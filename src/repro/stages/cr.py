"""Cardinality-reduction stages: FSS, sensitivity sampling, uniform sampling.

Each CR stage replaces the state's point set by a small weighted coreset
``(S, Δ, w)`` (Definition 3.2).  ``FSSStage`` runs the full FSS construction
(in-place PCA + sensitivity sampling, Theorem 3.2) and records the fitted
basis for the compact wire format; ``SensitivityStage`` and ``UniformStage``
are the primitive samplers, usable on their own or after a ``PCAStage``.
"""

from __future__ import annotations

from typing import Optional

from repro.cr.fss import FSSCoreset
from repro.cr.sensitivity import SensitivitySampler
from repro.cr.uniform import UniformCoreset
from repro.stages.base import Stage, StageContext, StageEffect, SourceState
from repro.stages.sizing import default_coreset_size, default_pca_rank
from repro.utils.validation import check_positive_int


def resolve_coreset_size(size: Optional[int], n: int, k: int) -> int:
    """Coreset cardinality actually built for ``n`` input points: the explicit
    ``size`` capped at ``n``, or the practical default.  Shared by the CR
    stages and by the streaming engine's shape pinning."""
    if size is not None:
        return min(check_positive_int(size, "coreset_size"), n)
    return default_coreset_size(n, k)


_resolve_size = resolve_coreset_size


class FSSStage(Stage):
    """Build an FSS coreset of the current points (Theorem 3.2).

    The coreset points stay in the ambient coordinates of the current space
    but span the fitted principal subspace, which the stage records so the
    engine can transmit subspace coordinates plus the basis (Theorem 4.1's
    wire format) — unless a later DR stage moves the points again.
    """

    name = "FSS"
    reduces_cardinality = True
    cacheable = True

    def __init__(self, size: Optional[int] = None, pca_rank: Optional[int] = None) -> None:
        self.size = size
        self.pca_rank = pca_rank

    def fingerprint(self):
        return ("FSS", self.size, self.pca_rank)

    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        n, d = state.cardinality, state.dimension
        size = _resolve_size(self.size, n, ctx.k)
        if self.pca_rank is not None:
            rank = min(check_positive_int(self.pca_rank, "pca_rank"), n, d)
        else:
            rank = default_pca_rank(n, d, ctx.k)
        fss = FSSCoreset(
            k=ctx.k,
            epsilon=ctx.epsilon,
            delta=ctx.delta,
            size=size,
            pca_rank=rank,
            seed=ctx.derive_seed(),
        )
        built = fss.build(state.points, weights=state.weights)
        coreset = built.coreset
        return StageEffect(
            state=state.evolve(
                points=coreset.points,
                weights=coreset.weights,
                shift=state.shift + coreset.shift,
                subspace=built.pca,
            ),
            details={"coreset_size": float(coreset.size)},
        )


class SensitivityStage(Stage):
    """Sensitivity (importance) sampling of the current points.

    Keeps any recorded subspace: sampling selects rows, so the points still
    lie in the fitted principal subspace and the compact wire format stays
    valid.  ``PCAStage`` + ``SensitivityStage`` therefore recomposes FSS from
    primitive stages.
    """

    name = "SS"
    reduces_cardinality = True
    cacheable = True

    def __init__(self, size: Optional[int] = None) -> None:
        self.size = size

    def fingerprint(self):
        return ("SS", self.size)

    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        size = _resolve_size(self.size, state.cardinality, ctx.k)
        sampler = SensitivitySampler(k=ctx.k, size=size, seed=ctx.derive_seed())
        coreset = sampler.build(state.points, weights=state.weights, shift=state.shift)
        return StageEffect(
            state=state.evolve(
                points=coreset.points,
                weights=coreset.weights,
                shift=coreset.shift,
            ),
            details={"coreset_size": float(coreset.size)},
        )


class UniformStage(Stage):
    """Uniform sampling of the current points — the naive CR baseline.

    No worst-case ε-coreset guarantee (Section 7.4's ablation shows why
    importance sampling matters), but a valid stage that composes with DR and
    QT stages into pipelines the seed code could not express.
    """

    name = "Uniform"
    reduces_cardinality = True
    cacheable = True

    def __init__(self, size: Optional[int] = None, replace: bool = True) -> None:
        self.size = size
        self.replace = replace

    def fingerprint(self):
        return ("Uniform", self.size, self.replace)

    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        size = _resolve_size(self.size, state.cardinality, ctx.k)
        sampler = UniformCoreset(size=size, seed=ctx.derive_seed(), replace=self.replace)
        coreset = sampler.build(state.points, weights=state.weights, shift=state.shift)
        return StageEffect(
            state=state.evolve(
                points=coreset.points,
                weights=coreset.weights,
                shift=coreset.shift,
            ),
            details={"coreset_size": float(coreset.size)},
        )
