"""Practical default summary sizes shared by the stages and the pipelines.

The theoretical constants of the paper (``Õ(k³/ε⁴)`` coresets,
``8 ε⁻² log(nk/δ)`` JL dimensions) exceed laptop-scale dataset sizes, so —
as in the paper's experiments (Section 7.1), which tune summary sizes so all
algorithms land in a comparable empirical error regime — these defaults are
large enough for stable k-means estimates yet a small fraction of the data.
Every stage accepts an explicit override.
"""

from __future__ import annotations

from repro.dr.jl import jl_target_dimension


def default_coreset_size(n: int, k: int) -> int:
    """Practical default coreset cardinality used when none is given."""
    return int(min(n, max(100, 200 * k)))


def default_jl_dimension(n: int, k: int, d: int, epsilon: float, delta: float) -> int:
    """Practical default JL target dimension (never exceeding ``d``).

    Uses the Lemma 4.1 form ``O(ε⁻² log(nk/δ))`` with constant 1; the
    theoretical constant 8 routinely exceeds the ambient dimension at the
    paper's scale.
    """
    return jl_target_dimension(n, k, epsilon, delta, constant=1.0, max_dimension=d)


def default_pca_rank(n: int, d: int, k: int) -> int:
    """Practical default PCA / FSS intrinsic rank ``t``: enough directions to
    capture ``k`` clusters with slack, but far below the ambient dimension."""
    return max(k + 2, min(d, n, 5 * k))


def default_distributed_samples(m: int, k: int) -> int:
    """Practical default for the disSS global sample budget across ``m``
    sources (Theorem 5.2's constants exceed laptop-scale sizes)."""
    return max(100, 100 * k, 20 * m * k)
