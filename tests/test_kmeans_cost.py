"""Tests for repro.kmeans.cost."""

import numpy as np
import pytest

from repro.kmeans.cost import (
    assign_to_centers,
    cluster_means,
    kmeans_cost,
    normalized_cost,
    partition_cost,
    partition_from_centers,
    weighted_kmeans_cost,
    within_cluster_sizes,
)


class TestAssignToCenters:
    def test_nearest_center_chosen(self, tiny_points):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels, d2 = assign_to_centers(tiny_points, centers)
        assert np.array_equal(labels, [0, 0, 0, 1, 1, 1])
        assert np.allclose(d2, [0.0, 1.0, 1.0, 0.0, 1.0, 1.0])

    def test_tie_breaks_to_lowest_index(self):
        points = np.array([[0.5, 0.0]])
        centers = np.array([[0.0, 0.0], [1.0, 0.0]])
        labels, _ = assign_to_centers(points, centers)
        assert labels[0] == 0

    def test_single_center(self, tiny_points):
        labels, d2 = assign_to_centers(tiny_points, np.zeros((1, 2)))
        assert np.all(labels == 0)
        assert d2[3] == pytest.approx(200.0)


class TestKmeansCost:
    def test_exact_value(self, tiny_points):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert kmeans_cost(tiny_points, centers) == pytest.approx(4.0)

    def test_zero_cost_when_centers_equal_points(self, tiny_points):
        assert kmeans_cost(tiny_points, tiny_points) == pytest.approx(0.0)

    def test_cost_decreases_with_more_centers(self, blob_points):
        one = kmeans_cost(blob_points, blob_points[:1])
        two = kmeans_cost(blob_points, blob_points[:2])
        assert two <= one


class TestWeightedCost:
    def test_unit_weights_match_unweighted(self, tiny_points):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert weighted_kmeans_cost(tiny_points, centers) == pytest.approx(
            kmeans_cost(tiny_points, centers)
        )

    def test_weights_scale_cost(self, tiny_points):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        w = np.full(6, 3.0)
        assert weighted_kmeans_cost(tiny_points, centers, w) == pytest.approx(12.0)

    def test_shift_added(self, tiny_points):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert weighted_kmeans_cost(tiny_points, centers, shift=5.0) == pytest.approx(9.0)

    def test_duplicated_points_equal_weighting(self, blob_points):
        centers = blob_points[:3]
        doubled = np.vstack([blob_points, blob_points])
        w = np.full(blob_points.shape[0], 2.0)
        assert weighted_kmeans_cost(blob_points, centers, w) == pytest.approx(
            kmeans_cost(doubled, centers), rel=1e-10
        )


class TestClusterMeans:
    def test_simple_means(self, tiny_points):
        labels = np.array([0, 0, 0, 1, 1, 1])
        means = cluster_means(tiny_points, labels, 2)
        assert np.allclose(means[0], [1.0 / 3.0, 1.0 / 3.0])
        assert np.allclose(means[1], [31.0 / 3.0, 31.0 / 3.0])

    def test_weighted_mean(self):
        points = np.array([[0.0], [2.0]])
        labels = np.array([0, 0])
        means = cluster_means(points, labels, 1, weights=np.array([3.0, 1.0]))
        assert means[0, 0] == pytest.approx(0.5)

    def test_empty_cluster_is_zero(self, tiny_points):
        labels = np.zeros(6, dtype=int)
        means = cluster_means(tiny_points, labels, 3)
        assert np.allclose(means[1], 0.0)
        assert np.allclose(means[2], 0.0)


class TestPartitionCost:
    def test_partition_cost_uses_means(self, tiny_points):
        labels = np.array([0, 0, 0, 1, 1, 1])
        cost = partition_cost(tiny_points, labels, 2)
        # Each cluster of 3 points at pairwise distance 1 around its mean.
        expected = 2 * (2.0 / 3.0 + 2.0 / 3.0)
        assert cost == pytest.approx(expected)

    def test_partition_cost_lower_than_any_center_cost(self, blob_points):
        centers = blob_points[:4]
        labels, _ = assign_to_centers(blob_points, centers)
        assert partition_cost(blob_points, labels, 4) <= kmeans_cost(blob_points, centers) + 1e-9

    def test_partition_from_centers_covers_all_points(self, blob_points):
        parts = partition_from_centers(blob_points, blob_points[:5])
        total = sum(len(p) for p in parts)
        assert total == blob_points.shape[0]


class TestNormalizedCost:
    def test_identity_is_one(self, blob_points):
        c = blob_points[:3]
        assert normalized_cost(blob_points, c, c) == pytest.approx(1.0)

    def test_worse_centers_above_one(self, blobs):
        points, _, true_centers = blobs
        bad = np.zeros_like(true_centers)
        assert normalized_cost(points, bad, true_centers) >= 1.0

    def test_zero_reference_handled(self):
        points = np.zeros((4, 2))
        centers = np.zeros((1, 2))
        assert normalized_cost(points, centers, centers) == 1.0


class TestWithinClusterSizes:
    def test_counts(self):
        labels = np.array([0, 1, 1, 2, 2, 2])
        assert np.array_equal(within_cluster_sizes(labels, 4), [1, 2, 3, 0])
