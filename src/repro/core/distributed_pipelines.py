"""Multi-source pipelines: distributed NR, BKLW, and Algorithm 4 (JL+BKLW).

Each pipeline operates on a list of per-source shards, builds a fresh
:class:`~repro.distributed.cluster.EdgeCluster`, executes the distributed
protocol through the metered network, and returns a
:class:`~repro.core.report.PipelineReport`.

Because edge devices compute in parallel, the complexity metric reported in
``source_seconds`` is the *maximum* per-source computation time (the
wall-clock bottleneck); the per-source total is available in ``details``.
"""

from __future__ import annotations

import abc
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.report import PipelineReport
from repro.cr.coreset import Coreset
from repro.distributed.bklw import BKLWCoreset
from repro.distributed.cluster import EdgeCluster
from repro.distributed.partition import partition_dataset
from repro.dr.jl import JLProjection, jl_target_dimension
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.random import SeedLike, as_generator, derive_seed
from repro.utils.validation import check_fraction, check_matrix, check_positive_int


def default_distributed_samples(m: int, k: int) -> int:
    """Practical default for the disSS global sample budget.

    As with the centralized defaults, the theoretical constants of
    Theorem 5.2 far exceed laptop-scale dataset sizes; the paper's
    experiments tune summary sizes for comparable empirical error.
    """
    return max(100, 100 * k, 20 * m * k)


class MultiSourcePipeline(abc.ABC):
    """Base class for multi-data-source pipelines.

    Parameters
    ----------
    k:
        Number of clusters.
    epsilon, delta:
        Accuracy / confidence parameters used for derived defaults.
    pca_rank, total_samples, jl_dimension:
        Optional summary-geometry overrides (disPCA rank ``t1 = t2``, disSS
        global sample budget, JL target dimension).
    quantizer:
        Optional rounding quantizer applied to outgoing summaries.
    server_n_init:
        Restarts of the server-side weighted k-means solver.
    seed:
        Master seed.
    """

    name: str = "abstract"

    def __init__(
        self,
        k: int,
        epsilon: float = 1.0 / 3.0,
        delta: float = 0.1,
        pca_rank: Optional[int] = None,
        total_samples: Optional[int] = None,
        jl_dimension: Optional[int] = None,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        seed: SeedLike = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon", high=1.0 / 3.0, inclusive_high=True)
        self.delta = check_fraction(delta, "delta")
        self.pca_rank = pca_rank
        self.total_samples = total_samples
        self.jl_dimension = jl_dimension
        self.quantizer = quantizer
        self.server_n_init = check_positive_int(server_n_init, "server_n_init")
        self._rng = as_generator(seed)

    # -------------------------------------------------------------- helpers
    def _resolved_pca_rank(self, shards: Sequence[np.ndarray]) -> int:
        d = shards[0].shape[1]
        min_n = min(s.shape[0] for s in shards)
        if self.pca_rank is not None:
            return min(check_positive_int(self.pca_rank, "pca_rank"), d, min_n)
        return max(self.k + 2, min(d, min_n, 5 * self.k))

    def _resolved_samples(self, shards: Sequence[np.ndarray]) -> int:
        if self.total_samples is not None:
            return check_positive_int(self.total_samples, "total_samples")
        return default_distributed_samples(len(shards), self.k)

    def _resolved_jl_dimension(self, total_n: int, d: int) -> int:
        if self.jl_dimension is not None:
            return min(check_positive_int(self.jl_dimension, "jl_dimension"), d)
        return jl_target_dimension(
            total_n, self.k, min(self.epsilon, 0.999), self.delta,
            constant=1.0, max_dimension=d,
        )

    def _build_cluster(self, shards: Sequence[np.ndarray]) -> EdgeCluster:
        return EdgeCluster.from_shards(
            shards,
            k=self.k,
            seed=derive_seed(self._rng),
            server_n_init=self.server_n_init,
        )

    def _report(
        self,
        cluster: EdgeCluster,
        centers: np.ndarray,
        server_seconds: float,
        coreset: Optional[Coreset] = None,
        summary_dimension: int = 0,
    ) -> PipelineReport:
        report = PipelineReport(
            algorithm=self.name,
            centers=centers,
            communication_scalars=cluster.network.uplink_scalars(),
            communication_bits=cluster.network.uplink_bits(),
            source_seconds=cluster.max_source_compute_seconds(),
            server_seconds=server_seconds + cluster.server.compute_seconds,
            summary_cardinality=0 if coreset is None else coreset.size,
            summary_dimension=summary_dimension,
            quantizer_bits=(
                None if self.quantizer is None else self.quantizer.significant_bits
            ),
        )
        return report.with_detail(
            total_source_seconds=cluster.total_source_compute_seconds(),
            num_sources=cluster.num_sources,
        )

    # ------------------------------------------------------------------ API
    @abc.abstractmethod
    def run(self, shards: Sequence[np.ndarray]) -> PipelineReport:
        """Execute the pipeline over per-source shards of the dataset."""

    def run_on_dataset(
        self,
        points: np.ndarray,
        num_sources: int,
        strategy: str = "random",
        partition_seed: SeedLike = None,
    ) -> PipelineReport:
        """Convenience wrapper: partition ``points`` and run the pipeline."""
        points = check_matrix(points, "points")
        seed = partition_seed if partition_seed is not None else derive_seed(self._rng)
        indices = partition_dataset(points, num_sources, strategy=strategy, seed=seed)
        return self.run([points[idx] for idx in indices])


class DistributedNoReductionPipeline(MultiSourcePipeline):
    """Distributed NR baseline: every source ships its raw shard."""

    name = "NR (distributed)"

    def run(self, shards: Sequence[np.ndarray]) -> PipelineReport:
        shards = [check_matrix(s, "shard") for s in shards]
        cluster = self._build_cluster(shards)

        for source in cluster.sources:
            payload = source.points
            bits = None
            if self.quantizer is not None:
                payload = source.quantize(payload, self.quantizer)
                bits = self.quantizer.significant_bits
            source.send_to_server(payload, tag="raw-data", significant_bits=bits)
            cluster.server.receive_coreset(
                Coreset(payload, np.ones(payload.shape[0]), shift=0.0)
            )

        server_start = time.perf_counter()
        merged = cluster.server.merged_coreset()
        result = cluster.server.solve_kmeans(merged)
        server_seconds = time.perf_counter() - server_start

        return self._report(
            cluster,
            centers=result.centers,
            server_seconds=server_seconds,
            coreset=merged,
            summary_dimension=cluster.dimension,
        )


class BKLWPipeline(MultiSourcePipeline):
    """The BKLW baseline (Theorem 5.3): disPCA + disSS, then server k-means.

    The disPCA stage ships each source's local singular vectors (``O(k d/ε²)``
    scalars per source), which dominates the communication cost for
    high-dimensional data — exactly the term Algorithm 4 removes.
    """

    name = "BKLW"

    def run(self, shards: Sequence[np.ndarray]) -> PipelineReport:
        shards = [check_matrix(s, "shard") for s in shards]
        cluster = self._build_cluster(shards)

        builder = BKLWCoreset(
            k=self.k,
            epsilon=self.epsilon,
            delta=self.delta,
            pca_rank=self._resolved_pca_rank(shards),
            total_samples=self._resolved_samples(shards),
            quantizer=self.quantizer,
        )
        built = builder.build(cluster.sources, cluster.server)

        server_start = time.perf_counter()
        result = cluster.server.solve_kmeans(built.coreset)
        server_seconds = time.perf_counter() - server_start

        return self._report(
            cluster,
            centers=result.centers,
            server_seconds=server_seconds,
            coreset=built.coreset,
            summary_dimension=cluster.dimension,
        ).with_detail(
            dispca_scalars=built.dispca.transmitted_scalars,
            disss_scalars=built.disss.transmitted_scalars,
        )


class JLBKLWPipeline(MultiSourcePipeline):
    """Algorithm 4 (Theorem 5.4): every source applies a shared-seed JL
    projection to its shard (no communication), then BKLW runs in the
    projected space; the server lifts the centers back through the JL
    pseudo-inverse.
    """

    name = "JL+BKLW (Alg4)"

    def run(self, shards: Sequence[np.ndarray]) -> PipelineReport:
        shards = [check_matrix(s, "shard") for s in shards]
        d = shards[0].shape[1]
        total_n = sum(s.shape[0] for s in shards)
        jl_dim = self._resolved_jl_dimension(total_n, d)
        jl_seed = derive_seed(self._rng)

        cluster = self._build_cluster(shards)

        # Each source applies the shared-seed JL projection locally; this
        # costs zero communication because the seed is pre-shared.
        projection = JLProjection(d, jl_dim, seed=jl_seed)
        for source in cluster.sources:
            source.apply_jl(projection)

        builder = BKLWCoreset(
            k=self.k,
            epsilon=self.epsilon,
            delta=self.delta,
            pca_rank=self._resolved_pca_rank(shards),
            total_samples=self._resolved_samples(shards),
            quantizer=self.quantizer,
        )
        built = builder.build(cluster.sources, cluster.server)

        server_start = time.perf_counter()
        result = cluster.server.solve_kmeans(built.coreset)
        server_projection = JLProjection(d, jl_dim, seed=jl_seed)
        centers = server_projection.inverse_transform(result.centers)
        server_seconds = time.perf_counter() - server_start

        return self._report(
            cluster,
            centers=centers,
            server_seconds=server_seconds,
            coreset=built.coreset,
            summary_dimension=jl_dim,
        ).with_detail(
            dispca_scalars=built.dispca.transmitted_scalars,
            disss_scalars=built.disss.transmitted_scalars,
            jl_dimension=jl_dim,
        )
