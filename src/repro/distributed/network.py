"""The simulated network: explicit messages with scalar/bit accounting.

The paper measures communication cost as "the number of scalars a data source
sends to the server" (Section 3.4), refined to bits once quantization enters
(Section 6/7).  The :class:`SimulatedNetwork` gives every algorithm a single
chokepoint through which all uplink (source → server) and downlink
(server → source) traffic must pass, so the metering cannot be bypassed and
per-algorithm communication numbers are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.quantization.bits import DOUBLE_PRECISION_BITS, bits_per_scalar


def _count_scalars(payload) -> int:
    """Number of scalar values in a message payload.

    Payloads may be numpy arrays, python/numpy scalars (including booleans —
    ``bool`` is an ``int`` subclass and ``np.bool_`` is accepted explicitly,
    so both flavours count as one scalar), or (possibly nested)
    lists/tuples/dicts of those.  ``None`` counts zero scalars wherever it
    appears — at top level or inside a container — modelling an absent
    optional field.  Any other type (strings, arbitrary objects) raises
    ``TypeError``: an unmeterable payload must never cross the wire silently.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (int, float, np.integer, np.floating, np.bool_)):
        return 1
    if isinstance(payload, dict):
        return sum(_count_scalars(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(_count_scalars(v) for v in payload)
    raise TypeError(f"unsupported payload type {type(payload)!r}")


@dataclass(frozen=True)
class Message:
    """One transmission between a data source and the server.

    Attributes
    ----------
    sender, receiver:
        Node identifiers; the server is ``"server"`` and sources are
        ``"source-<i>"``.
    tag:
        Human-readable label describing what was sent (e.g. ``"coreset"``,
        ``"local-svd"``, ``"sample-size"``).
    scalars:
        Number of scalar values in the payload.
    bits_per_value:
        Precision of each transmitted scalar (64 unless quantized).
    """

    sender: str
    receiver: str
    tag: str
    scalars: int
    bits_per_value: int = DOUBLE_PRECISION_BITS

    @property
    def bits(self) -> int:
        return self.scalars * self.bits_per_value

    @property
    def uplink(self) -> bool:
        """True if the message flows from a data source to the server."""
        return self.receiver == "server"


@dataclass
class TransmissionLog:
    """Aggregated view over a sequence of messages."""

    messages: List[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        self.messages.append(message)

    # ------------------------------------------------------------- queries
    def total_scalars(self, uplink_only: bool = True) -> int:
        return sum(m.scalars for m in self.messages if m.uplink or not uplink_only)

    def total_bits(self, uplink_only: bool = True) -> int:
        return sum(m.bits for m in self.messages if m.uplink or not uplink_only)

    def scalars_by_tag(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.messages:
            out[m.tag] = out.get(m.tag, 0) + m.scalars
        return out

    def scalars_by_sender(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.messages:
            out[m.sender] = out.get(m.sender, 0) + m.scalars
        return out

    def __len__(self) -> int:
        return len(self.messages)


class SimulatedNetwork:
    """In-process network connecting data sources to the edge server.

    All algorithm code transmits through :meth:`send`, which records the
    message and returns the payload unchanged (the "wire" is the python call
    stack).  Quantized payloads declare their reduced ``significant_bits`` so
    the bit accounting matches what a real deployment would send.
    """

    def __init__(self) -> None:
        self.log = TransmissionLog()

    def send(
        self,
        sender: str,
        receiver: str,
        payload,
        tag: str = "data",
        significant_bits: Optional[int] = None,
        scalars: Optional[int] = None,
    ):
        """Transmit ``payload`` and record the cost.

        Parameters
        ----------
        sender, receiver:
            Node identifiers.
        payload:
            The transmitted object (returned unchanged).
        tag:
            Label for the accounting breakdown.
        significant_bits:
            If the payload was quantized, the retained significand bits;
            determines ``bits_per_value``.
        scalars:
            Override the scalar count (used when the logical payload differs
            from the python object, e.g. symbolic seed exchange counted as 0).
        """
        count = _count_scalars(payload) if scalars is None else int(scalars)
        message = Message(
            sender=sender,
            receiver=receiver,
            tag=tag,
            scalars=count,
            bits_per_value=bits_per_scalar(significant_bits),
        )
        self.log.record(message)
        return payload

    # Convenience wrappers ---------------------------------------------------
    def uplink_scalars(self) -> int:
        """Total scalars sent from data sources to the server."""
        return self.log.total_scalars(uplink_only=True)

    def uplink_bits(self) -> int:
        """Total bits sent from data sources to the server."""
        return self.log.total_bits(uplink_only=True)

    def reset(self) -> None:
        self.log = TransmissionLog()
