"""Property-based tests (hypothesis) for the core data structures and
invariants that must hold for arbitrary inputs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cr.coreset import Coreset
from repro.distributed.network import _count_scalars
from repro.distributed.partition import partition_dataset
from repro.dr.jl import JLProjection
from repro.kmeans.cost import assign_to_centers, kmeans_cost, weighted_kmeans_cost
from repro.quantization.bits import bits_per_scalar
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.linalg import pairwise_squared_distances

# Bounded, finite float matrices keep hypothesis fast and avoid overflow in
# squared distances.
finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def matrices(max_rows=12, max_cols=6):
    return hnp.arrays(
        dtype=float,
        shape=st.tuples(
            st.integers(min_value=1, max_value=max_rows),
            st.integers(min_value=1, max_value=max_cols),
        ),
        elements=finite_floats,
    )


@st.composite
def points_and_centers(draw, max_rows=12, max_cols=5, max_centers=4):
    d = draw(st.integers(min_value=1, max_value=max_cols))
    n = draw(st.integers(min_value=1, max_value=max_rows))
    k = draw(st.integers(min_value=1, max_value=max_centers))
    points = draw(hnp.arrays(float, (n, d), elements=finite_floats))
    centers = draw(hnp.arrays(float, (k, d), elements=finite_floats))
    return points, centers


class TestCostProperties:
    @settings(max_examples=60, deadline=None)
    @given(points_and_centers())
    def test_cost_non_negative(self, pc):
        points, centers = pc
        assert kmeans_cost(points, centers) >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(points_and_centers())
    def test_adding_a_center_never_increases_cost(self, pc):
        points, centers = pc
        extended = np.vstack([centers, points[:1]])
        base = kmeans_cost(points, centers)
        # Relative tolerance: with coordinates up to 1e6 the cost reaches
        # ~1e12, where one ulp of reduction-order noise dwarfs any absolute
        # epsilon.
        assert kmeans_cost(points, extended) <= base + 1e-6 + 1e-9 * base

    @settings(max_examples=60, deadline=None)
    @given(points_and_centers(), st.floats(min_value=0.0, max_value=100.0))
    def test_shift_is_additive(self, pc, shift):
        points, centers = pc
        base = weighted_kmeans_cost(points, centers)
        shifted = weighted_kmeans_cost(points, centers, shift=shift)
        assert shifted == pytest.approx(base + shift, rel=1e-9, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(points_and_centers(), st.floats(min_value=0.1, max_value=10.0))
    def test_cost_scales_with_uniform_weights(self, pc, scale):
        points, centers = pc
        weights = np.full(points.shape[0], scale)
        assert weighted_kmeans_cost(points, centers, weights) == pytest.approx(
            scale * kmeans_cost(points, centers), rel=1e-9, abs=1e-6
        )

    @settings(max_examples=60, deadline=None)
    @given(points_and_centers())
    def test_assignment_cost_consistency(self, pc):
        points, centers = pc
        labels, d2 = assign_to_centers(points, centers)
        # The per-point distance to the assigned center equals the minimum
        # pairwise distance.
        full = pairwise_squared_distances(points, centers)
        assert np.allclose(d2, full.min(axis=1), rtol=1e-9, atol=1e-6)
        assert np.all(labels >= 0) and np.all(labels < centers.shape[0])


class TestDistanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(matrices())
    def test_self_distance_diagonal_zero(self, m):
        d2 = pairwise_squared_distances(m, m)
        # Absolute tolerance must scale with the magnitude of the entries:
        # the |x|^2 - 2xy + |y|^2 expansion cancels catastrophically for
        # large values.
        scale = max(1.0, float(np.max(np.abs(m))) ** 2)
        assert np.allclose(np.diag(d2), 0.0, atol=1e-9 * scale)
        assert np.all(d2 >= 0.0)


class TestQuantizerProperties:
    @settings(max_examples=80, deadline=None)
    @given(matrices(), st.integers(min_value=1, max_value=52))
    def test_relative_error_bound(self, m, s):
        quantized = RoundingQuantizer(s).quantize(m)
        error = np.abs(m - quantized)
        assert np.all(error <= np.abs(m) * 2.0 ** (-s) + 1e-300)

    @settings(max_examples=50, deadline=None)
    @given(matrices(), st.integers(min_value=1, max_value=52))
    def test_idempotence(self, m, s):
        q = RoundingQuantizer(s)
        once = q.quantize(m)
        assert np.array_equal(q.quantize(once), once)

    @settings(max_examples=50, deadline=None)
    @given(matrices(), st.integers(min_value=1, max_value=52))
    def test_sign_and_zero_preservation(self, m, s):
        quantized = RoundingQuantizer(s).quantize(m)
        assert np.all((m == 0) == (quantized == 0))
        assert np.all(np.sign(quantized) == np.sign(m))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=60))
    def test_bits_per_scalar_monotone_and_capped(self, s):
        assert bits_per_scalar(s) <= 64
        if s < 52:
            assert bits_per_scalar(s) <= bits_per_scalar(s + 1)


class TestJLProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_projection_shapes_and_determinism(self, d, d_out, seed):
        d_out = min(d_out, d)
        a = JLProjection(d, d_out, seed=seed)
        b = JLProjection(d, d_out, seed=seed)
        assert a.matrix.shape == (d, d_out)
        assert np.array_equal(a.matrix, b.matrix)

    @settings(max_examples=40, deadline=None)
    @given(matrices(max_rows=8, max_cols=10), st.integers(min_value=0, max_value=10**6))
    def test_projection_linearity(self, m, seed):
        d = m.shape[1]
        proj = JLProjection(d, max(1, d // 2), seed=seed)
        scaled = proj.transform(2.5 * m)
        assert np.allclose(scaled, 2.5 * proj.transform(m), rtol=1e-9, atol=1e-6)


# ---------------------------------------------------------------------------
# _count_scalars: payload trees with a known ground-truth scalar count.
# ---------------------------------------------------------------------------

@st.composite
def counted_payloads(draw, max_leaves=6):
    """A (payload, exact scalar count) pair built as a random container tree.

    Leaves are the meterable atoms (None, python/numpy scalars, bools, and
    small arrays), each carrying its known count; containers (lists, tuples,
    dicts) combine children additively.
    """
    leaf = st.one_of(
        st.just((None, 0)),
        st.integers(min_value=-10**6, max_value=10**6).map(lambda v: (v, 1)),
        finite_floats.map(lambda v: (v, 1)),
        st.booleans().map(lambda v: (v, 1)),
        st.booleans().map(lambda v: (np.bool_(v), 1)),
        finite_floats.map(lambda v: (np.float64(v), 1)),
        st.integers(min_value=0, max_value=10**6).map(lambda v: (np.int64(v), 1)),
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=1, max_value=3),
        ).map(lambda shape: (np.zeros(shape), shape[0] * shape[1])),
    )

    def containers(children):
        return st.one_of(
            st.lists(children, max_size=max_leaves).map(
                lambda kids: ([p for p, _ in kids], sum(c for _, c in kids))
            ),
            st.lists(children, max_size=max_leaves).map(
                lambda kids: (tuple(p for p, _ in kids), sum(c for _, c in kids))
            ),
            st.dictionaries(
                st.text(st.characters(codec="ascii"), max_size=4),
                children,
                max_size=max_leaves,
            ).map(
                lambda kids: (
                    {key: p for key, (p, _) in kids.items()},
                    sum(c for _, c in kids.values()),
                )
            ),
        )

    payload, count = draw(st.recursive(leaf, containers, max_leaves=4 * max_leaves))
    return payload, count


class TestCountScalarsProperties:
    @settings(max_examples=120, deadline=None)
    @given(counted_payloads())
    def test_count_matches_ground_truth(self, payload_and_count):
        payload, expected = payload_and_count
        assert _count_scalars(payload) == expected

    @settings(max_examples=80, deadline=None)
    @given(counted_payloads(), counted_payloads())
    def test_counts_are_additive(self, a, b):
        payload_a, count_a = a
        payload_b, count_b = b
        assert _count_scalars([payload_a, payload_b]) == count_a + count_b
        assert _count_scalars({"a": payload_a, "b": payload_b}) == count_a + count_b

    @settings(max_examples=80, deadline=None)
    @given(counted_payloads())
    def test_none_is_transparent_at_any_position(self, payload_and_count):
        payload, expected = payload_and_count
        assert _count_scalars([None, payload, None]) == expected
        assert _count_scalars({"absent": None, "present": payload}) == expected
        assert _count_scalars((payload, [None, (None,)])) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        counted_payloads(),
        st.sampled_from(["a string", b"bytes", object(), {1, 2}, 3 + 4j]),
    )
    def test_unmeterable_types_raise_at_any_depth(self, payload_and_count, bad):
        payload, _ = payload_and_count
        with pytest.raises(TypeError):
            _count_scalars(bad)
        with pytest.raises(TypeError):
            _count_scalars([payload, bad])
        with pytest.raises(TypeError):
            _count_scalars({"ok": payload, "bad": [bad]})


# ---------------------------------------------------------------------------
# partition_dataset: every strategy is an exact partition of the dataset.
# ---------------------------------------------------------------------------

@st.composite
def partition_cases(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    num_sources = draw(st.integers(min_value=1, max_value=n))
    d = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    skew = draw(st.floats(min_value=1.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False))
    points = np.random.default_rng(seed).standard_normal((n, d))
    return points, num_sources, seed, skew


@st.composite
def large_partition_cases(draw):
    """Thousand-source splits with n barely above num_sources and strong
    skew — the regime where the skewed-size remainder handling has to drain
    a large deficit without emptying any bucket."""
    num_sources = draw(st.integers(min_value=1000, max_value=4096))
    extra = draw(st.integers(min_value=0, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    skew = draw(st.floats(min_value=32.0, max_value=4096.0,
                          allow_nan=False, allow_infinity=False))
    n = num_sources + extra
    points = np.random.default_rng(seed).standard_normal((n, 2))
    return points, num_sources, seed, skew


class TestPartitionProperties:
    @settings(max_examples=100, deadline=None)
    @given(partition_cases(), st.sampled_from(["random", "skewed-size", "by-cluster"]))
    def test_every_point_covered_exactly_once(self, case, strategy):
        points, num_sources, seed, skew = case
        chunks = partition_dataset(
            points, num_sources, strategy=strategy, seed=seed, skew=skew
        )
        assert len(chunks) == num_sources
        combined = np.concatenate(chunks)
        # Exact partition: the chunks' union is 0..n-1 with no repetition.
        assert np.array_equal(np.sort(combined), np.arange(points.shape[0]))

    @settings(max_examples=100, deadline=None)
    @given(partition_cases(), st.sampled_from(["random", "skewed-size", "by-cluster"]))
    def test_every_source_gets_at_least_one_point(self, case, strategy):
        points, num_sources, seed, skew = case
        chunks = partition_dataset(
            points, num_sources, strategy=strategy, seed=seed, skew=skew
        )
        assert all(chunk.size >= 1 for chunk in chunks)

    @settings(max_examples=60, deadline=None)
    @given(partition_cases())
    def test_random_partition_is_seed_deterministic(self, case):
        points, num_sources, seed, _ = case
        a = partition_dataset(points, num_sources, strategy="random", seed=seed)
        b = partition_dataset(points, num_sources, strategy="random", seed=seed)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    @settings(max_examples=60, deadline=None)
    @given(partition_cases())
    def test_skew_keeps_smallest_source_first(self, case):
        # Regression for the bug this suite originally caught: strong skew
        # with n close to num_sources used to dump a negative rounding
        # remainder onto the last bucket, leaving it empty.
        points, num_sources, seed, _ = case
        chunks = partition_dataset(
            points, num_sources, strategy="skewed-size", seed=seed, skew=8.0
        )
        sizes = [c.size for c in chunks]
        assert sum(sizes) == points.shape[0]
        assert min(sizes) >= 1
        # The geometric profile always makes the first source a smallest one.
        assert sizes[0] == min(sizes)

    @settings(max_examples=20, deadline=None)
    @given(large_partition_cases(),
           st.sampled_from(["random", "skewed-size", "by-cluster"]))
    def test_thousand_source_splits_stay_exact(self, case, strategy):
        # Hierarchical aggregation makes thousand-source deployments real;
        # every strategy must still produce an exact cover with non-empty
        # sources when n is barely above num_sources and the skew is strong.
        points, num_sources, seed, skew = case
        chunks = partition_dataset(
            points, num_sources, strategy=strategy, seed=seed, skew=skew
        )
        assert len(chunks) == num_sources
        sizes = np.array([c.size for c in chunks])
        assert sizes.min() >= 1
        combined = np.concatenate(chunks)
        assert np.array_equal(np.sort(combined), np.arange(points.shape[0]))
        if strategy == "skewed-size":
            # The drained deficit never inverts the geometric profile's
            # smallest-first shape.
            assert sizes[0] == sizes.min()


class TestCoresetProperties:
    @settings(max_examples=50, deadline=None)
    @given(matrices(max_rows=10, max_cols=4), st.floats(min_value=0.0, max_value=10.0))
    def test_coreset_cost_vs_weighted_cost(self, m, shift):
        weights = np.abs(m[:, 0]) + 1.0
        coreset = Coreset(m, weights, shift=shift)
        centers = m[:1]
        assert coreset.cost(centers) == pytest.approx(
            weighted_kmeans_cost(m, centers, weights, shift), rel=1e-9, abs=1e-6
        )

    @settings(max_examples=50, deadline=None)
    @given(matrices(max_rows=8, max_cols=4))
    def test_merge_preserves_total_weight(self, m):
        a = Coreset(m, np.ones(m.shape[0]))
        b = Coreset(m * 2.0, np.full(m.shape[0], 2.0))
        merged = a.merged_with(b)
        assert merged.total_weight == pytest.approx(a.total_weight + b.total_weight)
        assert merged.size == a.size + b.size
