"""The streaming edge server: fold incremental summaries, answer queries.

The server's state is a per-(source, bucket) map of the coresets it has
received.  Folding a :class:`~repro.streaming.source.SourceUpdate` is O(delta)
— drop retired buckets, store new ones; no recomputation touches buckets that
did not change.  A *query* merges all live buckets across sources into one
generalized coreset (exact, by coreset mergeability) and solves weighted
k-means on it, exactly like the one-shot engine's server section; the caller
lifts the centers back through the stream's DR maps.

Delivery safety
---------------
Real transports deliver at-least-once and sometimes out of order: a client
whose ack was lost retries an update the server already applied, and a
delayed retry can arrive *after* a newer update retired the buckets it
carries.  Folding either one blindly corrupts the global coreset (a retired
bucket comes back from the dead) and double-counts the accounting.  The fold
layer therefore keeps a per-source ``batch_index`` high-water mark:

* an update at or below the watermark is a no-op acknowledged as
  :attr:`FoldResult.DUPLICATE` — replaying any delivered prefix leaves the
  server byte-identical;
* an update that skips past ``watermark + 1`` raises :class:`UpdateGapError`
  so the transport can replay the missing range instead of silently folding
  a summary whose retirements reference updates the server never saw;
* an update from a source that never registered raises
  :class:`UnknownSourceError` (sources are admitted by the engine or the
  daemon's registration handshake, and survive snapshot/restore).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Tuple

from repro.cr.coreset import Coreset, merge_coresets
from repro.kmeans.lloyd import KMeansResult, WeightedKMeans
from repro.streaming.source import SourceUpdate
from repro.utils import faultpoints
from repro.utils.clock import perf_counter
from repro.utils.random import (
    SeedLike,
    as_generator,
    derive_seed,
    generator_state,
    restore_generator,
)
from repro.utils.validation import check_positive_int


class EmptySummaryError(RuntimeError):
    """Raised by :meth:`StreamingServer.global_coreset` / ``query`` when the
    server holds no live buckets.

    A ``RuntimeError`` subclass so legacy callers keep working, but typed so
    the serving daemon can map it to a clean protocol error (and the CLI to
    a one-line message) instead of a traceback.
    """


class FoldRejectedError(ValueError):
    """Base of the typed fold rejections (the daemon maps these to protocol
    errors; the in-process engine treats them as programming errors)."""


class UnknownSourceError(FoldRejectedError):
    """An update arrived from a source the server never registered."""

    def __init__(self, source_id: str, registered: Iterable[str]) -> None:
        self.source_id = str(source_id)
        self.registered = tuple(sorted(str(s) for s in registered))
        super().__init__(
            f"unknown source {self.source_id!r}: the server has registered "
            f"{', '.join(self.registered) if self.registered else 'no sources'}"
            " — complete the registration handshake before folding"
        )


class UpdateGapError(FoldRejectedError):
    """An update skipped past the source's high-water mark.

    Folding it would apply retirements/additions that assume updates the
    server never saw; the transport must replay from :attr:`expected`.
    """

    def __init__(self, source_id: str, expected: int, got: int) -> None:
        self.source_id = str(source_id)
        self.expected = int(expected)
        self.got = int(got)
        super().__init__(
            f"update gap for source {self.source_id!r}: expected batch_index "
            f"{self.expected}, got {self.got} — replay the missing updates"
        )


class FoldResult(enum.Enum):
    """What :meth:`StreamingServer.fold` did with an update."""

    #: The update advanced the source's watermark and changed server state.
    APPLIED = "applied"
    #: The update was at or below the watermark: a retransmission of state
    #: the server already holds.  Nothing changed; the delivery layer should
    #: ack it so the client stops retrying.
    DUPLICATE = "duplicate"


class StreamingServer:
    """Server half of the streaming protocol.

    Parameters
    ----------
    k:
        Number of clusters answered per query.
    n_init, max_iterations:
        Weighted k-means solver parameters (fresh solver per query, seeded
        deterministically from the server's generator).
    seed:
        Master seed for the per-query solver seeds.
    """

    def __init__(
        self,
        k: int,
        n_init: int = 5,
        max_iterations: int = 100,
        seed: SeedLike = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self._rng = as_generator(seed)
        self._buckets: Dict[Tuple[str, int], Coreset] = {}
        #: source_id -> highest applied batch_index (-1 = registered, no
        #: update applied yet).  Presence in the map *is* registration.
        self._watermarks: Dict[str, int] = {}
        self.compute_seconds = 0.0
        self.updates_folded = 0

    # ------------------------------------------------------------------ API
    def register(self, source_id: str) -> int:
        """Admit ``source_id`` to the fold (idempotent).

        Returns the source's current high-water mark (-1 when no update has
        been applied yet), which is what a reconnecting client needs to know
        where to resume its replay.
        """
        return self._watermarks.setdefault(str(source_id), -1)

    @property
    def registered_sources(self) -> Tuple[str, ...]:
        """Every source admitted to the fold, sorted."""
        return tuple(sorted(self._watermarks))

    def watermark(self, source_id: str) -> int:
        """Highest applied ``batch_index`` of a registered source."""
        try:
            return self._watermarks[str(source_id)]
        except KeyError:
            raise UnknownSourceError(source_id, self._watermarks) from None

    def fold(self, update: SourceUpdate) -> FoldResult:
        """Apply one incremental summary: retire then add.

        Idempotent and ordered per source (see the module docstring): a
        duplicate or stale update returns :attr:`FoldResult.DUPLICATE`
        without touching any state, a gapped update raises
        :class:`UpdateGapError`, an unregistered source raises
        :class:`UnknownSourceError`.
        """
        faultpoints.reach("streaming.fold")
        watermark = self._watermarks.get(update.source_id)
        if watermark is None:
            raise UnknownSourceError(update.source_id, self._watermarks)
        index = int(update.batch_index)
        if index <= watermark:
            return FoldResult.DUPLICATE
        if index > watermark + 1:
            raise UpdateGapError(update.source_id, watermark + 1, index)
        for bucket_id in update.retired_ids:
            self._buckets.pop((update.source_id, bucket_id), None)
        for bucket in update.added:
            self._buckets[(update.source_id, bucket.bucket_id)] = bucket.coreset
        self._watermarks[update.source_id] = index
        self.updates_folded += 1
        return FoldResult.APPLIED

    @property
    def live_bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def has_summary(self) -> bool:
        return bool(self._buckets)

    def global_coreset(self) -> Coreset:
        """Union of every live bucket of every source."""
        if not self._buckets:
            raise EmptySummaryError(
                "the server holds no summary (no batches ingested, or every "
                "bucket expired from the sliding window)"
            )
        return merge_coresets(self._buckets[key] for key in sorted(self._buckets))

    def query(self) -> Tuple[KMeansResult, Coreset, float]:
        """Solve weighted k-means on the current global coreset.

        Returns ``(result, coreset, seconds)``; centers are in the stream's
        reduced space — the engine lifts them back.
        """
        start = perf_counter()
        coreset = self.global_coreset()
        solver = WeightedKMeans(
            k=self.k,
            n_init=self.n_init,
            max_iterations=self.max_iterations,
            seed=derive_seed(self._rng),
        )
        result = solver.fit(coreset.points, coreset.weights)
        seconds = perf_counter() - start
        self.compute_seconds += seconds
        return result, coreset, seconds

    # ------------------------------------------------------- snapshotting
    def snapshot(self) -> dict:
        """JSON-able snapshot of the server's complete state.

        Covers the per-(source, bucket) coreset map, the solver
        configuration, the accounting counters, and — crucially — the exact
        position of the per-query seed generator (the stream-wide rng
        handshake): a server rebuilt by :meth:`restore` derives the same
        solver seed for its next query and answers it bit-identically.
        """
        return {
            "k": self.k,
            "n_init": self.n_init,
            "max_iterations": self.max_iterations,
            "rng": generator_state(self._rng),
            "compute_seconds": self.compute_seconds,
            "updates_folded": self.updates_folded,
            # The delivery watermarks ride in the snapshot so a restored
            # server keeps the same at-least-once guarantees: a client
            # replaying its unacked tail gets DUPLICATE acks, never a
            # double-fold.
            "watermarks": [
                {"source_id": source_id, "batch_index": self._watermarks[source_id]}
                for source_id in sorted(self._watermarks)
            ],
            "buckets": [
                {
                    "source_id": source_id,
                    "bucket_id": bucket_id,
                    "coreset": self._buckets[(source_id, bucket_id)].to_state(),
                }
                for source_id, bucket_id in sorted(self._buckets)
            ],
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "StreamingServer":
        """Rebuild a server from a :meth:`snapshot` (mid-stream queries on
        the restored server are bit-identical to the original's)."""
        server = cls(
            k=int(snapshot["k"]),
            n_init=int(snapshot.get("n_init", 5)),
            max_iterations=int(snapshot.get("max_iterations", 100)),
        )
        server._rng = restore_generator(snapshot["rng"])
        server._buckets = {
            (str(b["source_id"]), int(b["bucket_id"])):
                Coreset.from_state(b["coreset"])
            for b in snapshot.get("buckets", ())
        }
        server._watermarks = {
            str(w["source_id"]): int(w["batch_index"])
            for w in snapshot.get("watermarks", ())
        }
        # Pre-watermark snapshots: admit every source that owns a bucket so
        # folding can continue, with an unknown (-1) watermark.
        for source_id, _ in server._buckets:
            server._watermarks.setdefault(source_id, -1)
        server.compute_seconds = float(snapshot.get("compute_seconds", 0.0))
        server.updates_folded = int(snapshot.get("updates_folded", 0))
        return server
