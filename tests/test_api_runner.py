"""End-to-end tests for the spec runner: golden parity and sweep grids."""

from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.datasets import load_benchmark_dataset
from repro.metrics import ExperimentRunner

GOLDEN_SPEC = Path(__file__).parent / "goldens" / "experiment_spec.toml"


def _deterministic(evaluations):
    """Evaluations with wall-clock timing zeroed: every remaining field
    (costs, bits, geometry, participation) must be bit-identical across
    reruns, so plain dataclass equality is byte-exactness."""
    import dataclasses

    return [
        dataclasses.replace(e, source_seconds=0.0, server_seconds=0.0)
        for e in evaluations
    ]


def _deterministic_summary(summary):
    import dataclasses

    return dataclasses.replace(summary, mean_source_seconds=0.0)


class TestGoldenSpecParity:
    """`repro run spec.toml` must be bit-identical to the equivalent
    hand-written ExperimentRunner.run_registered call."""

    def test_golden_spec_matches_direct_run_registered(self):
        spec = api.load_spec(GOLDEN_SPEC)
        assert isinstance(spec, api.ExperimentSpec)
        outcome = api.run_experiment(spec)

        # The equivalent direct call, written out by hand (no network
        # kwargs: the spec's default ideal preset must be byte-equivalent
        # to not simulating a network at all).
        points, _ = load_benchmark_dataset("mnist", n=300, d=64, seed=3)
        runner = ExperimentRunner(points, k=2, monte_carlo_runs=2, seed=3)
        result = runner.run_registered(
            ["jl-fss"], coreset_size=60, jl_dimension=10,
        )

        direct = result.evaluations["jl-fss"]
        via_spec = outcome.evaluations
        assert len(via_spec) == len(direct) == 2
        assert _deterministic(via_spec) == _deterministic(direct)
        assert _deterministic_summary(outcome.summary) == \
            _deterministic_summary(result.summary()["jl-fss"])
        assert outcome.run_seeds == tuple(runner.run_seeds)

    def test_multi_source_spec_matches_direct_call(self):
        spec = api.ExperimentSpec(
            pipeline=api.PipelineConfig(algorithm="bklw", k=2,
                                        total_samples=40, pca_rank=5),
            data=api.DataSpec(name="neurips", n=240, d=60),
            runs=2,
            seed=4,
            num_sources=3,
        )
        outcome = api.run_experiment(spec)

        points, _ = load_benchmark_dataset("neurips", n=240, d=60, seed=4)
        runner = ExperimentRunner(points, k=2, monte_carlo_runs=2, seed=4)
        result = runner.run_registered(
            ["bklw"], num_sources=3, total_samples=40, pca_rank=5,
        )
        assert _deterministic(outcome.evaluations) == \
            _deterministic(result.evaluations["bklw"])

    def test_shared_context_does_not_change_results(self):
        spec = api.load_spec(GOLDEN_SPEC)
        plain = api.run_experiment(spec)
        via_sweep = api.run_sweep(api.SweepSpec(base=spec))
        assert len(via_sweep) == 1
        assert _deterministic(via_sweep[0].evaluations) == \
            _deterministic(plain.evaluations)
        assert _deterministic_summary(via_sweep[0].summary) == \
            _deterministic_summary(plain.summary)


class TestSweepGrid:
    @pytest.fixture(scope="class")
    def sweep(self):
        base = api.ExperimentSpec(
            pipeline=api.PipelineConfig(algorithm="jl-fss", k=2,
                                        coreset_size=40, jl_dimension=8),
            data=api.DataSpec(name="mnist", n=200, d=30),
            runs=2,
            seed=5,
        )
        return api.SweepSpec(base=base, axes={
            "k": [2, 3],
            "quantize_bits": [8, 12],
            "net": ["ideal", "lossy"],
        })

    @pytest.fixture(scope="class")
    def stored(self, sweep, tmp_path_factory):
        store = api.ResultStore(
            tmp_path_factory.mktemp("sweep") / "sweep.jsonl"
        )
        outcomes = api.run_sweep(sweep, store=store)
        return outcomes, store

    def test_2x2x2_grid_persists_8_records(self, stored):
        outcomes, store = stored
        records = store.load()
        assert len(outcomes) == len(records) == 8
        assert len({r.cell_id for r in records}) == 8
        assert len({r.spec_hash for r in records}) == 8

    def test_paired_monte_carlo_seeds(self, stored):
        outcomes, store = stored
        seed_sets = {r.run_seeds for r in store.load()}
        assert len(seed_sets) == 1          # every cell drew the same seeds
        assert len(next(iter(seed_sets))) == 2

    def test_cells_share_reference_per_dataset_k(self, stored):
        # Cells differing only in the network axis are judged against the
        # same reference and transmit the same summary: identical costs.
        outcomes, _ = stored
        by_id = {o.cell_id: o for o in outcomes}
        for k in (2, 3):
            for bits in (8, 12):
                ideal = by_id[f"k={k},quantize_bits={bits},net=ideal"]
                lossy = by_id[f"k={k},quantize_bits={bits},net=lossy"]
                assert ideal.summary.mean_normalized_cost == \
                    pytest.approx(lossy.summary.mean_normalized_cost)

    def test_compare_table_over_the_store(self, stored):
        _, store = stored
        table = store.compare()
        assert len(table.rows) == 8
        text = str(table)
        assert "k=3,quantize_bits=12,net=lossy" in text
        for row in table.rows:
            assert np.isfinite(row["mean_normalized_cost"])

    def test_compare_outcomes_matches_record_table(self, stored):
        # The in-memory table (what `repro sweep` prints) must equal the
        # one rebuilt from persisted records, without re-stamping records.
        outcomes, store = stored
        assert api.compare_outcomes(outcomes).rows == store.compare().rows

    def test_records_carry_spec_and_provenance(self, stored):
        _, store = stored
        record = store.load()[0]
        assert record.spec["pipeline"]["algorithm"] == "jl-fss"
        assert record.spec["seed"] == 5
        assert "repro_version" in record.provenance
        assert record.summary["runs"] == 2
        assert len(record.evaluations) == 2
        rebuilt = api.ExperimentSpec.from_dict(record.spec)
        assert rebuilt.pipeline.k in (2, 3)

    def test_parallel_jobs_bitwise_equal_to_sequential(self, sweep):
        sequential = api.run_sweep(sweep, jobs=1)
        threaded = api.run_sweep(sweep, jobs=4)
        for a, b in zip(sequential, threaded):
            assert a.cell_id == b.cell_id
            assert _deterministic(a.evaluations) == _deterministic(b.evaluations)

    def test_store_filter_slices_the_grid(self, stored):
        _, store = stored
        k3 = store.filter(k=3)
        assert len(k3) == 4
        assert all(r.spec_field("pipeline.k") == 3 for r in k3)
        lossy = store.filter(preset="lossy")
        assert len(lossy) == 4
