"""Live serving: the real network boundary of the streaming protocol.

Everything else in the repo simulates delivery in-process; this package
stands up an actual long-running clustering daemon (``repro serve``) and its
client SDK.  The daemon accepts batch uplinks from many concurrent clients
over a newline-delimited-JSON socket protocol (:mod:`repro.serve.protocol`),
folds them into per-tenant :class:`~repro.streaming.server.StreamingServer`
state behind per-tenant locks (:mod:`repro.serve.daemon`), and answers
weighted k-means queries mid-stream.  The client half
(:mod:`repro.serve.client`) wraps an unchanged
:class:`~repro.streaming.source.StreamingSource`, so the wire carries the
same ``SourceUpdate`` bucket deltas the in-process engine folds.

Delivery is at-least-once: clients retry every fold until it is acked, and
the fold layer's per-source watermarks make retries and reordered stale
updates no-ops (:attr:`~repro.streaming.server.FoldResult.DUPLICATE`), so a
crash anywhere in the pipeline never double-counts a batch.
"""

from repro.serve.client import ServeClient, ServeError, ServeSource
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_update,
    encode_update,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeSource",
    "decode_update",
    "encode_update",
]
