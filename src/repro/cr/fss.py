"""The FSS coreset construction (Feldman–Schmidt–Sohler, paper ref. [11]).

FSS = PCA intrinsic-dimension reduction + sensitivity sampling + Δ term:

1. Project the dataset onto the span of its top ``t = O(k/ε²)`` right
   singular vectors (keeping the points in the original coordinates,
   ``A -> A V V^T``); the discarded tail energy ‖A − A V V^T‖²_F becomes the
   constant shift Δ of the generalized coreset (Definition 3.2).
2. Run sensitivity sampling on the projected points.

The resulting ``(S, Δ, w)`` is an ε-coreset of the original dataset of size
``Õ(k³/ε⁴)`` — constant in ``n`` and ``d`` (Theorem 3.2).

Communication subtlety (Theorem 4.1): the coreset points live in a
``t``-dimensional subspace of ``R^d``, so a data source transmitting the
coreset alone sends each point's ``t`` subspace coordinates *plus* the basis
``V`` (``d·t`` scalars) — the term that dominates FSS's communication cost
and that JL+FSS avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cr.coreset import Coreset
from repro.cr.sensitivity import SensitivitySampler, sensitivity_sample_size
from repro.dr.pca import PCAProjection, pca_target_dimension
from repro.utils.random import SeedLike, as_generator, derive_seed
from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive_int,
)


def fss_coreset_size(k: int, epsilon: float, delta: float = 0.1, constant: float = 10.0) -> int:
    """ε-coreset cardinality ``O(k³ log²k log(1/δ)/ε⁴)`` from Theorem 3.2."""
    return sensitivity_sample_size(k, epsilon, delta, constant)


@dataclass
class FSSResult:
    """Everything FSS produces: the coreset plus the fitted PCA map.

    ``basis_scalars`` is the number of scalars needed to describe the PCA
    basis if it has to be transmitted (Theorem 4.1's ``O(d·k/ε²)`` term); it
    is zero only when a subsequent JL projection makes the basis irrelevant.
    """

    coreset: Coreset
    pca: PCAProjection
    basis_scalars: int


class FSSCoreset:
    """FSS coreset builder.

    Parameters
    ----------
    k:
        Number of clusters.
    epsilon:
        Target coreset error ε.
    delta:
        Failure probability δ.
    size:
        Explicit coreset cardinality; if omitted it is derived from
        ``(k, ε, δ)`` via :func:`fss_coreset_size`.
    pca_rank:
        Explicit PCA rank ``t``; if omitted, ``k + ceil(4k/ε²) − 1``.
    approximate_svd:
        Use randomized SVD inside the PCA step.
    seed:
        RNG seed or generator.
    """

    def __init__(
        self,
        k: int,
        epsilon: float = 0.2,
        delta: float = 0.1,
        size: Optional[int] = None,
        pca_rank: Optional[int] = None,
        approximate_svd: bool = False,
        seed: SeedLike = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.delta = check_fraction(delta, "delta")
        self.size = size if size is None else check_positive_int(size, "size")
        self.pca_rank = (
            pca_rank if pca_rank is None else check_positive_int(pca_rank, "pca_rank")
        )
        self.approximate_svd = bool(approximate_svd)
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------ API
    def resolved_size(self, n: Optional[int] = None) -> int:
        """Coreset cardinality actually used (never larger than n)."""
        size = self.size or fss_coreset_size(self.k, self.epsilon, self.delta)
        if n is not None:
            size = min(size, n)
        return size

    def resolved_rank(self, n: int, d: int) -> int:
        """PCA rank actually used (never larger than min(n, d))."""
        rank = self.pca_rank or pca_target_dimension(self.k, self.epsilon)
        return max(1, min(rank, n, d))

    def build(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> FSSResult:
        """Construct the FSS coreset of ``points``.

        Returns an :class:`FSSResult`; the coreset points are expressed in
        the original ``d``-dimensional coordinates (projected onto the
        principal subspace), with the discarded energy in ``coreset.shift``.
        """
        points = check_matrix(points, "points")
        n, d = points.shape
        rank = self.resolved_rank(n, d)

        pca = PCAProjection(
            rank=rank,
            approximate=self.approximate_svd,
            seed=derive_seed(self._rng),
        )
        pca.fit(points)
        projected = pca.project_in_place(points)
        tail_energy = pca.residual_energy(points)

        sampler = SensitivitySampler(
            k=self.k,
            size=self.resolved_size(n),
            seed=derive_seed(self._rng),
        )
        coreset = sampler.build(projected, weights=weights, shift=tail_energy)
        basis_scalars = d * pca.effective_rank
        return FSSResult(coreset=coreset, pca=pca, basis_scalars=basis_scalars)

    def __call__(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> Coreset:
        """Shorthand returning only the coreset."""
        return self.build(points, weights).coreset
