"""E10 — Section 6.3: configuring joint DR, CR, and QT.

The paper's configuration problem (21): given a bound Y0 on the acceptable
approximation error, choose the DR/CR error parameters and the quantizer
precision that minimize the predicted communication cost.  This benchmark
sweeps Y0, prints the chosen configuration for each bound, and verifies the
qualitative behaviour the paper describes: tighter error budgets force more
significant bits (and hence more communication), and the empirical error of
the configured pipeline respects the budget's ordering.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from bench_helpers import print_series, run_once
from repro.core.configuration import configure_joint_reduction, estimate_optimal_cost_lower_bound
from repro.core.pipelines import JLFSSJLPipeline
from repro.kmeans.cost import kmeans_cost
from repro.metrics import EvaluationContext
from repro.quantization.rounding import RoundingQuantizer

ERROR_BOUNDS = (1.2, 1.5, 2.0, 3.0)


def _configure_and_run(points):
    n, d = points.shape
    context = EvaluationContext.build(points, k=2, n_init=5, seed=0)
    lower_bound = estimate_optimal_cost_lower_bound(points, 2, seed=1)
    max_norm = float(np.max(np.linalg.norm(points, axis=1)))
    diameter = 2.0 * max_norm

    chosen_bits: List[float] = []
    predicted_comm: List[float] = []
    empirical_cost: List[float] = []
    for bound in ERROR_BOUNDS:
        config = configure_joint_reduction(
            n=n, d=d, k=2, error_bound=bound,
            optimal_cost_lower_bound=lower_bound,
            max_norm=max_norm, diameter=diameter,
            use_paper_constants=False,
            coreset_cardinality=300, coreset_dimension=48,
        )
        pipeline = JLFSSJLPipeline(
            k=2, seed=7, coreset_size=300, jl_dimension=48,
            quantizer=RoundingQuantizer(config.significant_bits),
        )
        report = pipeline.run(points)
        chosen_bits.append(float(config.significant_bits))
        predicted_comm.append(config.predicted_communication)
        empirical_cost.append(kmeans_cost(points, report.centers) / context.reference_cost)
    return chosen_bits, predicted_comm, empirical_cost


@pytest.mark.benchmark(group="sec63")
def test_sec63_configuration_sweep(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    chosen_bits, predicted_comm, empirical_cost = run_once(
        benchmark, lambda: _configure_and_run(points)
    )
    print_series(
        "Section 6.3: configuration chosen per error budget Y0",
        "Y0",
        ERROR_BOUNDS,
        {
            "significant bits s": chosen_bits,
            "predicted comm (bits)": predicted_comm,
            "empirical normalized cost": empirical_cost,
        },
    )
    # Tighter budgets never use fewer significant bits.
    assert all(b1 >= b2 for b1, b2 in zip(chosen_bits, chosen_bits[1:]))
    # Tighter budgets never predict less communication.
    assert all(c1 >= c2 for c1, c2 in zip(predicted_comm, predicted_comm[1:]))
    # The empirical error of every configured pipeline stays within a modest
    # factor of its (loose, worst-case) budget.
    for bound, cost in zip(ERROR_BOUNDS, empirical_cost):
        assert cost <= bound * 1.5, (bound, cost)
