"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import (
    ALGORITHMS,
    build_parser,
    build_stream_parser,
    main,
    run,
    run_stream,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "mnist"
        assert args.algorithm == "jl-fss-jl"
        assert args.k == 2
        assert args.runs == 1

    def test_all_algorithms_accepted(self):
        parser = build_parser()
        for name in ALGORITHMS:
            args = parser.parse_args(["--algorithm", name])
            assert args.algorithm == name

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "quantum"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestRun:
    def test_single_source_run(self, capsys):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "300", "--d", "64",
            "--algorithm", "jl-fss", "--coreset-size", "60", "--runs", "1",
            "--seed", "3",
        ])
        row = run(args)
        captured = capsys.readouterr().out
        assert "normalized k-means cost" in captured
        assert row["normalized_cost"] > 0
        assert 0 < row["normalized_communication"] < 1

    def test_multi_source_run(self, capsys):
        args = build_parser().parse_args([
            "--dataset", "neurips", "--n", "240", "--d", "120",
            "--algorithm", "bklw", "--sources", "3", "--total-samples", "40",
            "--pca-rank", "5", "--runs", "1", "--seed", "4",
        ])
        row = run(args)
        assert row["normalized_cost"] > 0
        assert "normalized communication" in capsys.readouterr().out

    def test_quantized_run(self):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "300", "--d", "64",
            "--algorithm", "jl-fss-jl", "--coreset-size", "60",
            "--quantize-bits", "8", "--seed", "5",
        ])
        row = run(args)
        assert row["normalized_communication"] < 1

    def test_main_returns_zero(self):
        assert main([
            "--dataset", "mnist", "--n", "200", "--d", "49",
            "--algorithm", "nr", "--runs", "1", "--seed", "6",
        ]) == 0


class TestStreamSubcommand:
    def test_defaults(self):
        args = build_stream_parser().parse_args([])
        assert args.algorithm == "stream-fss"
        assert args.batch_size == 512
        assert args.window is None
        assert args.query_every is None

    def test_only_streaming_algorithms_accepted(self):
        parser = build_stream_parser()
        assert parser.parse_args(["--algorithm", "stream-jl-ss"]).algorithm == "stream-jl-ss"
        with pytest.raises(SystemExit):
            parser.parse_args(["--algorithm", "jl-fss"])

    def test_stream_run_reports_queries(self, capsys):
        args = build_stream_parser().parse_args([
            "--dataset", "mnist", "--n", "600", "--d", "64",
            "--algorithm", "stream-fss", "--coreset-size", "40",
            "--batch-size", "100", "--query-every", "2", "--sources", "2",
            "--seed", "7",
        ])
        row = run_stream(args)
        captured = capsys.readouterr().out
        assert "norm. cost" in captured
        assert row["normalized_cost"] > 0
        assert row["queries"] >= 2
        assert row["max_live_buckets"] >= 1

    def test_windowed_stream_run(self):
        args = build_stream_parser().parse_args([
            "--dataset", "mnist", "--n", "600", "--d", "36",
            "--algorithm", "stream-uniform-qt", "--coreset-size", "30",
            "--batch-size", "100", "--window", "2", "--sources", "2",
            "--seed", "8",
        ])
        row = run_stream(args)
        assert row["normalized_communication"] > 0

    def test_main_dispatches_stream(self):
        assert main([
            "stream", "--dataset", "mnist", "--n", "400", "--d", "25",
            "--algorithm", "stream-jl-ss", "--coreset-size", "30",
            "--jl-dimension", "10", "--batch-size", "100", "--seed", "9",
        ]) == 0
