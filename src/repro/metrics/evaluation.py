"""Evaluation of pipeline outputs against the original dataset.

The reference centers ``X*`` (the denominator of the normalized cost) are
computed once per dataset by a strong conventional solver and shared across
all evaluated algorithms, mirroring Section 7.1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.report import PipelineReport
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans
from repro.utils.random import SeedLike
from repro.utils.validation import check_matrix, check_positive_int


@dataclass
class EvaluationContext:
    """The fixed quantities every algorithm is judged against.

    Attributes
    ----------
    points:
        The full original dataset P (union of shards in the multi-source
        case).
    reference_centers:
        The near-optimal centers X* computed directly from P.
    reference_cost:
        ``cost(P, X*)``.
    """

    points: np.ndarray
    reference_centers: np.ndarray
    reference_cost: float

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        k: int,
        n_init: int = 10,
        seed: SeedLike = None,
    ) -> "EvaluationContext":
        """Compute the reference solution for a dataset."""
        points = check_matrix(points, "points")
        check_positive_int(k, "k")
        reference = solve_reference_kmeans(points, k, n_init=n_init, seed=seed)
        return cls(
            points=points,
            reference_centers=reference.centers,
            reference_cost=float(reference.cost),
        )

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    @property
    def d(self) -> int:
        return int(self.points.shape[1])


@dataclass
class PipelineEvaluation:
    """One evaluated pipeline run: the paper's three metrics plus extras."""

    algorithm: str
    normalized_cost: float
    normalized_communication: float
    communication_scalars: int
    communication_bits: int
    source_seconds: float
    server_seconds: float
    summary_cardinality: int
    summary_dimension: int
    quantizer_bits: Optional[int] = None
    participating_sources: int = 1
    failed_sources: int = 0
    retransmissions: int = 0
    messages_lost: int = 0
    simulated_network_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready mapping (persisted per run by the result store)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineEvaluation":
        """Rebuild an evaluation from :meth:`to_dict` output."""
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise ValueError(f"unknown PipelineEvaluation fields: {unknown}")
        return cls(**payload)


def evaluate_report(report: PipelineReport, context: EvaluationContext) -> PipelineEvaluation:
    """Score a pipeline report against the evaluation context."""
    cost = kmeans_cost(context.points, report.centers)
    if context.reference_cost <= 0:
        normalized = 1.0 if cost <= 0 else float("inf")
    else:
        normalized = cost / context.reference_cost
    return PipelineEvaluation(
        algorithm=report.algorithm,
        normalized_cost=float(normalized),
        normalized_communication=report.normalized_communication(context.n, context.d),
        communication_scalars=report.communication_scalars,
        communication_bits=report.communication_bits,
        source_seconds=report.source_seconds,
        server_seconds=report.server_seconds,
        summary_cardinality=report.summary_cardinality,
        summary_dimension=report.summary_dimension,
        quantizer_bits=report.quantizer_bits,
        participating_sources=report.participating_sources,
        failed_sources=report.failed_sources,
        retransmissions=report.retransmissions,
        messages_lost=report.messages_lost,
        simulated_network_seconds=report.simulated_network_seconds,
    )
