"""Command-line interface: declarative experiment runs, sweeps, and reports.

The CLI is built on the typed spec layer (:mod:`repro.api`): every
invocation — subcommand or legacy flat flags — constructs an
:class:`~repro.api.ExperimentSpec` and executes it through the experiment
harness, so flag runs, spec-file runs, and programmatic runs are
bit-identical.

Example invocations::

    repro run examples/specs/quickstart.toml          # spec-file run
    repro run spec.toml --runs 3 --store results/run.jsonl
    repro run --algorithm jl-fss --k 2 --quantize-bits 10
    repro sweep examples/specs/quantization_sweep.toml --store results/sweep.jsonl
    repro report results/sweep.jsonl --cdf normalized_cost
    repro stream --algorithm stream-fss --batch-size 512 --query-every 4
    repro serve --port 9009 --k 2 --snapshot results/serve.json
    repro serve --port 9009 --k 2 --restore results/serve.json   # after a crash
    repro client --port 9009 --algorithm stream-fss --batches 8 --query-every 4
    repro cache stats                                 # sweep stage cache
    repro cache gc --max-bytes 100000000
    repro sweep sweep.toml --store results/s.jsonl --resume   # after a crash
    repro store verify results/s.jsonl                # torn/corrupt check

    # legacy flat form (kept working via the spec adapter):
    python -m repro --dataset mnist --algorithm jl-fss-jl --k 2
    python -m repro --algorithm bklw --sources 10 --net-preset lossy --dropout 3:1
    python -m repro --list-algorithms

Algorithms are resolved through the pipeline registry
(:mod:`repro.core.registry`), so every registered stage composition — the
paper's eight algorithms plus the novel ones — is runnable here.  ``repro
run`` executes one experiment cell (Monte-Carlo repeated) and prints the
paper's three metrics; ``repro sweep`` expands an axis grid into cells with
paired seeds and a shared reference solution per (dataset, k), persisting
every cell to a JSONL result store; ``repro report`` renders stored records
as comparison tables and text CDFs.  The ``stream`` subcommand runs a
streaming composition over batched arrivals and prints the cost and
communication of every mid-stream query.

All experiment-shaped commands accept the unreliable-edge simulation flags
(``--net-preset``, ``--loss``, ``--retries``, ``--dropout``); degraded runs
report their participation, retransmissions, and simulated network time.
"""

from __future__ import annotations

import argparse
from typing import Any, Collection, Dict, Optional

from repro import api
from repro.core import registry
from repro.datasets import load_benchmark_dataset
from repro.distributed.conditions import FaultPlan, NetworkCondition
from repro.quantization.rounding import RoundingQuantizer


#: Where `repro sweep` keeps its stage cache unless --cache-dir overrides it
#: (beside the default result store, and ignored by git like the rest of
#: results/).
DEFAULT_CACHE_DIR = "results/stage_cache"


def _algorithms() -> Dict[str, tuple]:
    """CLI algorithm name -> (pipeline factory, is_multi_source)."""
    return {
        spec.name: (spec.factory, spec.multi_source)
        for spec in registry.registered_specs()
    }


#: Backwards-compatible view of the registry (kept because external callers
#: and the test suite introspect it).
ALGORITHMS = _algorithms()


def build_parser() -> argparse.ArgumentParser:
    """Create the legacy flat-flag argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-efficient k-means for edge-based machine learning "
                    "(ICDCS 2020 reproduction).",
        epilog="Subcommands: `repro run <spec.toml|flags>` executes one "
               "declarative experiment spec; `repro sweep <sweep.toml>` "
               "expands an axis grid into paired cells and persists a JSONL "
               "result store; `repro report <store.jsonl>` renders stored "
               "records; `repro stream --help` runs a stream-* composition "
               "over batched arrivals.",
    )
    parser.add_argument("--list-algorithms", action="store_true",
                        help="print the registered compositions and exit")
    _add_experiment_arguments(parser)
    return parser


def _add_experiment_arguments(parser: argparse.ArgumentParser,
                              suppress_defaults: bool = False) -> None:
    """The flat experiment flags, shared by the legacy form and `repro run`.

    With ``suppress_defaults`` the parser records only flags the user
    actually typed (so spec-file values are not clobbered by defaults).
    """
    def default(value):
        return argparse.SUPPRESS if suppress_defaults else value

    parser.add_argument("--dataset", choices=("mnist", "neurips"),
                        default=default("mnist"),
                        help="synthetic benchmark dataset to generate")
    parser.add_argument("--n", type=int, default=default(None),
                        help="dataset cardinality override")
    parser.add_argument("--d", type=int, default=default(None),
                        help="dataset dimension override")
    parser.add_argument("--algorithm", choices=registry.registered_names(),
                        default=default("jl-fss-jl"),
                        help="registered pipeline composition to run")
    parser.add_argument("--k", type=int, default=default(2),
                        help="number of clusters")
    parser.add_argument("--runs", type=int, default=default(1),
                        help="Monte-Carlo repetitions")
    parser.add_argument("--sources", type=int, default=default(10),
                        help="number of data sources (multi-source algorithms only)")
    parser.add_argument("--strategy", choices=api.PARTITION_STRATEGIES,
                        default=default("random"),
                        help="shard partition strategy (multi-source algorithms)")
    parser.add_argument("--topology", choices=("star", "tree"),
                        default=default(None),
                        help="aggregation topology (streaming algorithms): "
                             "star = flat source->server fold (default), "
                             "tree = balanced aggregator tree")
    parser.add_argument("--fan-in", type=int, default=default(None),
                        help="children per aggregator for --topology tree "
                             "(implies --topology tree when given alone)")
    parser.add_argument("--coreset-size", type=int, default=default(300),
                        help="coreset cardinality (single-source algorithms)")
    parser.add_argument("--total-samples", type=int, default=default(300),
                        help="disSS global sample budget (multi-source algorithms)")
    parser.add_argument("--pca-rank", type=int, default=default(None),
                        help="PCA / disPCA rank t")
    parser.add_argument("--jl-dimension", type=int, default=default(None),
                        help="JL target dimension d'")
    parser.add_argument("--quantize-bits", type=int, default=default(None),
                        help="significant bits kept by the rounding quantizer (default: no quantization)")
    parser.add_argument("--jobs", type=int, default=default(None),
                        help="worker threads for per-source computation "
                             "(multi-source algorithms; 1 = sequential, "
                             "0 = all cores; results are identical either way)")
    parser.add_argument("--seed", type=int, default=default(0),
                        help="master random seed")
    _add_network_arguments(parser, suppress_defaults=suppress_defaults)


def _add_network_arguments(parser: argparse.ArgumentParser,
                           suppress_defaults: bool = False) -> None:
    """Unreliable-edge simulation flags shared by every experiment command."""
    def default(value):
        return argparse.SUPPRESS if suppress_defaults else value

    group = parser.add_argument_group("network simulation")
    group.add_argument("--net-preset", choices=registry.network_preset_names(),
                       default=default("ideal"),
                       help="simulated network condition preset (default: ideal, "
                            "the loss-free wire)")
    group.add_argument("--loss", type=float, default=default(None),
                       help="override the per-message Bernoulli loss probability "
                            "of every link (0 <= loss < 1)")
    group.add_argument("--retries", type=int, default=default(None),
                       help="override the per-message retransmission budget "
                            "(every attempt is metered)")
    group.add_argument("--dropout", action="append", default=default(None),
                       metavar="SOURCE[:ROUND]",
                       help="drop source SOURCE (index) permanently at protocol "
                            "round / batch step ROUND (default 0); repeatable")


def _network_settings(args: argparse.Namespace) -> Dict[str, object]:
    """Resolve the network flags into create_pipeline keyword arguments."""
    return _network_spec_from_args(args).to_kwargs(getattr(args, "seed", 0))


def _network_spec_from_args(args: argparse.Namespace) -> api.NetworkSpec:
    try:
        return api.NetworkSpec(
            preset=getattr(args, "net_preset", "ideal"),
            loss=getattr(args, "loss", None),
            retries=getattr(args, "retries", None),
            dropout=tuple(getattr(args, "dropout", None) or ()),
        )
    except ValueError as exc:  # bad --loss / --dropout grammar etc.
        raise SystemExit(str(exc)) from None


def _print_degradation(report) -> None:
    """One status line for runs that saw losses or lost sources."""
    if report.failed_sources or report.messages_lost:
        print(f"degraded run: {report.participating_sources} participating, "
              f"{report.failed_sources} failed source(s), "
              f"{report.retransmissions} retransmissions, "
              f"{report.messages_lost} lost messages, "
              f"{report.simulated_network_seconds:.3f}s simulated network time")


def list_algorithms() -> str:
    """Human-readable table of registered compositions."""
    lines = []
    for spec in registry.registered_specs():
        if spec.streaming:
            kind = "stream"
        elif spec.multi_source:
            kind = "multi "
        else:
            kind = "single"
        flag = " [novel]" if spec.novel else ""
        lines.append(f"{spec.name:<18} {kind} {spec.description}{flag}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The flags → ExperimentSpec adapter (legacy flat form and `repro run` flags).
# ---------------------------------------------------------------------------

#: Flat experiment flags that are PipelineConfig knobs (argparse derives the
#: attribute names from the flags, so flag attr == knob name).
_FLAG_KNOBS = (
    "coreset_size", "total_samples", "pca_rank", "jl_dimension",
    "quantize_bits", "jobs",
)


def experiment_spec_from_args(
    args: argparse.Namespace,
    typed: Collection[str] = frozenset(),
) -> api.ExperimentSpec:
    """The thin legacy adapter: flat CLI flags → typed ExperimentSpec.

    Knob flags that the chosen algorithm's kind does not accept are dropped
    (the flat form always carries defaults for both kinds, e.g.
    ``--coreset-size`` *and* ``--total-samples``) — unless the user
    explicitly typed them (``typed``, the `repro run` path), in which case
    they reach PipelineConfig and fail eager validation instead of being
    silently ignored.
    """
    algorithm = args.algorithm
    accepted = set(registry.accepted_kwargs(algorithm))
    knobs: Dict[str, Any] = {}
    for knob in _FLAG_KNOBS:
        value = getattr(args, knob, None)
        if value is None:
            continue
        kwarg = "quantizer" if knob == "quantize_bits" else knob
        if kwarg in accepted or knob in typed:
            knobs[knob] = value
    kind = registry.factory_kind(algorithm)
    return api.ExperimentSpec(
        pipeline=api.PipelineConfig(algorithm=algorithm, k=args.k, **knobs),
        data=api.DataSpec(name=args.dataset, n=args.n, d=args.d),
        network=_network_spec_from_args(args),
        runs=getattr(args, "runs", 1),
        seed=args.seed,
        num_sources=args.sources if kind != "single-source" else None,
        strategy=getattr(args, "strategy", "random"),
        topology=_topology_spec_from_args(args),
    )


def _topology_spec_from_args(args: argparse.Namespace) -> Optional[api.TopologySpec]:
    """Resolve ``--topology`` / ``--fan-in`` (``--fan-in`` alone implies a
    tree; neither flag means "no topology section" — the flat star)."""
    kind = getattr(args, "topology", None)
    fan_in = getattr(args, "fan_in", None)
    if kind is None and fan_in is None:
        return None
    if kind is None:
        kind = "tree"
    return api.TopologySpec(kind=kind, fan_in=fan_in)


def _execute_spec(spec: api.ExperimentSpec,
                  store_path: Optional[str] = None) -> Dict[str, float]:
    """Run one experiment spec, print the paper's metrics, and return the
    summary row (shared by the legacy flat form and `repro run`)."""
    points, dataset = spec.data.load(spec.seed)
    print(f"dataset: {dataset.name} (n={dataset.n}, d={dataset.d}), "
          f"algorithm: {spec.pipeline.algorithm}, k={spec.pipeline.k}, "
          f"runs={spec.runs}")

    outcome = api.run_experiment(spec, points=points, dataset=dataset)
    summary = outcome.summary
    row = {
        "normalized_cost": summary.mean_normalized_cost,
        "normalized_communication": summary.mean_normalized_communication,
        "source_seconds": summary.mean_source_seconds,
        "runs": float(summary.runs),
        "mean_participating_sources": summary.mean_participating_sources,
        "total_retransmissions": float(summary.total_retransmissions),
    }
    print(f"normalized k-means cost : {row['normalized_cost']:.4f}")
    print(f"normalized communication: {row['normalized_communication']:.6f}")
    print(f"source running time (s) : {row['source_seconds']:.3f}")
    if summary.total_failed_sources or summary.total_messages_lost:
        print(f"degraded runs: mean participation "
              f"{summary.mean_participating_sources:.2f}, "
              f"{summary.total_failed_sources} failed source(s), "
              f"{summary.total_retransmissions} retransmissions, "
              f"{summary.total_messages_lost} lost messages, "
              f"{summary.mean_simulated_network_seconds:.3f}s mean simulated "
              f"network time")
    if store_path:
        try:
            record = api.ResultStore(store_path).append(outcome.to_record())
        except OSError as exc:
            raise SystemExit(f"cannot write store {store_path}: {exc}") from None
        print(f"stored run record {record.spec_hash} -> {store_path}")
    return row


def run(args: argparse.Namespace) -> Dict[str, float]:
    """Execute the experiment described by legacy flat arguments.

    Returns the summary row (also printed) so programmatic callers and tests
    can inspect it.
    """
    return _execute_spec(experiment_spec_from_args(args))


# ---------------------------------------------------------------------------
# `repro run`: spec-file (or flag-built) single experiment.
# ---------------------------------------------------------------------------

def build_run_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro run`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run one declarative experiment: from a .toml/.json spec "
                    "file, from flat flags, or from a spec file with flag "
                    "overrides on top.",
    )
    parser.add_argument("spec", nargs="?", default=None,
                        help="experiment spec file (.toml or .json); omit to "
                             "build the spec from flags")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="append the run record to this JSONL result store")
    _add_experiment_arguments(parser, suppress_defaults=True)
    return parser


#: `repro run` flag attribute → spec override axis (see repro.api.axis_names).
_OVERRIDE_AXES = (
    ("dataset", "dataset"), ("n", "n"), ("d", "d"),
    ("algorithm", "algorithm"), ("k", "k"), ("runs", "runs"),
    ("sources", "num_sources"), ("strategy", "strategy"),
    ("coreset_size", "coreset_size"), ("total_samples", "total_samples"),
    ("pca_rank", "pca_rank"), ("jl_dimension", "jl_dimension"),
    ("quantize_bits", "quantize_bits"), ("jobs", "jobs"), ("seed", "seed"),
    ("net_preset", "net"), ("loss", "loss"), ("retries", "retries"),
    ("dropout", "dropout"),
    ("topology", "topology"), ("fan_in", "fan_in"),
)


def _load_spec_or_exit(path: str):
    """Resolve a spec file, converting ordinary user mistakes (missing
    file, malformed TOML/JSON, invalid spec values) into a clean one-line
    CLI error instead of a traceback."""
    try:
        return api.load_spec(path)
    except OSError as exc:
        raise SystemExit(f"cannot read spec file {path}: {exc}") from None
    except ValueError as exc:  # covers TOML/JSON decode + spec validation
        raise SystemExit(f"invalid spec {path}: {exc}") from None
    except RuntimeError as exc:  # TOML specs on Python < 3.11 (no tomllib)
        raise SystemExit(f"cannot load spec {path}: {exc}") from None


def run_spec(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro run``: resolve the spec, apply overrides, run."""
    if args.spec is not None:
        loaded = _load_spec_or_exit(args.spec)
        if isinstance(loaded, api.SweepSpec):
            raise SystemExit(
                f"{args.spec} is a sweep spec; run it with `repro sweep {args.spec}`"
            )
        overrides = {
            axis: tuple(getattr(args, attr)) if attr == "dropout" else getattr(args, attr)
            for attr, axis in _OVERRIDE_AXES
            if hasattr(args, attr) and getattr(args, attr) is not None
        }
        try:
            spec = api.apply_axis_overrides(loaded, overrides) if overrides else loaded
        except ValueError as exc:
            raise SystemExit(f"invalid override for {args.spec}: {exc}") from None
    else:
        defaults = build_parser().parse_args([])
        merged = vars(defaults).copy()
        merged.update(vars(args))
        try:
            # vars(args) holds only the flags the user typed (SUPPRESS
            # defaults), so kind-foreign knobs among them raise.
            spec = experiment_spec_from_args(
                argparse.Namespace(**merged), typed=set(vars(args))
            )
        except ValueError as exc:
            raise SystemExit(f"invalid experiment flags: {exc}") from None
    return _execute_spec(spec, store_path=args.store)


# ---------------------------------------------------------------------------
# `repro sweep`: expand an axis grid, run every cell, persist the store.
# ---------------------------------------------------------------------------

def build_sweep_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro sweep`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Expand a sweep spec into its full cell grid (paired "
                    "Monte-Carlo seeds, one shared reference solution per "
                    "dataset × k) and run every cell.",
    )
    parser.add_argument("spec", help="sweep spec file (.toml or .json)")
    parser.add_argument("--store", default="results/sweep.jsonl", metavar="PATH",
                        help="JSONL result store to append cell records to "
                             "(default: results/sweep.jsonl; pass '' to skip "
                             "persistence)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="cells executed concurrently (1 = sequential, "
                             "0 = all cores; results are identical either way)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="memoize stage outputs and reference solutions "
                             "in a content-addressed cache so repeated "
                             "prefixes cost nothing; results are bit-identical "
                             "either way (default: on)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help=f"stage cache directory (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already committed to --store (a "
                             "crashed or aborted sweep continues where it "
                             "stopped; the finished store is identical to an "
                             "uncrashed run's)")
    parser.add_argument("--max-failures", type=int, default=0, metavar="N",
                        help="tolerate up to N failing cells (captured with "
                             "their traceback in the sweep journal and shown "
                             "as [failed] rows) before aborting (default: 0)")
    return parser


def run_sweep(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro sweep`` and print the comparison table."""
    loaded = _load_spec_or_exit(args.spec)
    if isinstance(loaded, api.ExperimentSpec):
        loaded = api.SweepSpec(base=loaded)  # a degenerate 1-cell sweep
    try:
        # Expansion validates every cell's spec; surface bad axis/base
        # combinations as a clean error before any cell runs.
        loaded.cells()
    except ValueError as exc:
        raise SystemExit(f"invalid sweep {args.spec}: {exc}") from None
    print(f"sweep: {loaded.cell_count()} cell(s) over "
          f"{len(loaded.axes)} axis/axes "
          f"({', '.join(name for name, _ in loaded.axes) or 'none'})")
    store = api.ResultStore(args.store) if args.store else None
    resume = getattr(args, "resume", False)
    if resume and store is None:
        raise SystemExit("--resume needs a result store; pass --store PATH")
    cache = api.StageCache(args.cache_dir) if getattr(args, "cache", False) else None
    try:
        outcomes = api.run_sweep(
            loaded, jobs=args.jobs, store=store, cache=cache,
            resume=resume, max_failures=getattr(args, "max_failures", 0),
        )
    except OSError as exc:
        raise SystemExit(f"cannot write results: {exc}") from None
    print(api.compare_outcomes(outcomes))
    restored = sum(1 for o in outcomes if getattr(o, "restored", False))
    failed = [o for o in outcomes if isinstance(o, api.FailedCell)]
    if resume and restored:
        print(f"resumed: {restored}/{len(outcomes)} cell(s) already in "
              f"{store.path}, {len(outcomes) - restored} executed")
    if failed:
        print(f"{len(failed)} cell(s) failed (tracebacks in "
              f"{api.SweepJournal.for_store(store.path).path if store else 'the sweep journal'}): "
              + ", ".join(o.cell_id or o.label for o in failed))
    if cache is not None:
        counters = cache.counters
        cells_hit = sum(1 for o in outcomes if o.cache_stats.get("hits"))
        print(f"stage cache [{args.cache_dir}]: {counters.hits} hit(s), "
              f"{counters.misses} miss(es) "
              f"({counters.hit_rate:.0%} hit rate; {cells_hit}/{len(outcomes)} "
              f"cell(s) reused cached stages)")
    if store is not None:
        stored = len(outcomes) - len(failed)
        print(f"stored {stored} run record(s) -> {store.path}")
    return {"cells": float(len(outcomes)), "failed": float(len(failed)),
            "restored": float(restored)}


# ---------------------------------------------------------------------------
# `repro report`: tables and text CDFs over a persisted result store.
# ---------------------------------------------------------------------------

def build_report_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro report`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a persisted JSONL result store: comparison "
                    "tables of aggregate metrics, and per-cell empirical "
                    "CDFs of per-run metrics.",
    )
    parser.add_argument("store", help="JSONL result store written by "
                                      "`repro run --store` / `repro sweep`")
    parser.add_argument("--metrics", default=",".join(api.DEFAULT_COMPARE_METRICS),
                        help="comma-separated aggregate (AlgorithmSummary) "
                             "columns for the table")
    parser.add_argument("--cdf", default=None, metavar="METRIC",
                        help="also print the per-cell empirical CDF of one "
                             "per-run metric (e.g. normalized_cost)")
    parser.add_argument("--algorithm", default=None,
                        help="only report records of this algorithm")
    return parser


def run_report(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro report``."""
    from repro.metrics.experiment import empirical_cdf

    store = api.ResultStore(args.store)
    records = (store.filter(algorithm=args.algorithm)
               if args.algorithm else store.load())
    if not records:
        print(f"no records in {args.store}")
        return {"records": 0.0}
    metrics = tuple(m.strip() for m in args.metrics.split(",") if m.strip())
    try:
        print(api.compare_records(records, metrics))
    except KeyError as exc:  # unknown --metrics name, with the valid set
        raise SystemExit(exc.args[0]) from None
    if args.cdf:
        metric = args.cdf
        print(f"\nempirical CDF of per-run {metric}:")
        for record in records:
            label = record.cell_id or record.algorithm
            samples = [e.get(metric) for e in record.evaluations]
            if not samples:
                print(f"  {label}: (no per-run evaluations recorded)")
                continue
            if any(not isinstance(s, (int, float)) for s in samples):
                available = sorted(
                    key for key, value in record.evaluations[0].items()
                    if isinstance(value, (int, float))
                )
                raise SystemExit(
                    f"metric {metric!r} is not a numeric per-run metric for "
                    f"{label}; available: {', '.join(available)}"
                )
            values, fractions = empirical_cdf(samples)
            steps = " ".join(
                f"{value:.4f}@{fraction:.2f}"
                for value, fraction in zip(values, fractions)
            )
            print(f"  {label}: {steps}")
    return {"records": float(len(records))}


# ---------------------------------------------------------------------------
# `repro cache`: inspect and prune the sweep stage cache.
# ---------------------------------------------------------------------------

def build_cache_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro cache`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or prune the content-addressed stage cache "
                    "written by `repro sweep`.",
    )
    parser.add_argument("action", choices=("stats", "gc"),
                        help="stats: print entry count and size; gc: evict "
                             "oldest entries down to --max-bytes")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help=f"stage cache directory (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--max-bytes", type=int, default=0, metavar="N",
                        help="gc: cache size to shrink to, oldest entries "
                             "first (default 0: remove every entry)")
    return parser


def run_cache(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro cache stats|gc``."""
    cache = api.StageCache(args.cache_dir)
    if args.action == "gc":
        if args.max_bytes < 0:
            raise SystemExit("--max-bytes must be >= 0")
        removed, freed = cache.gc(args.max_bytes)
        print(f"evicted {removed} entr{'y' if removed == 1 else 'ies'} "
              f"({freed} bytes) from {args.cache_dir}")
    stats = cache.stats()
    print(f"stage cache [{stats.directory}]: {stats.entries} "
          f"entr{'y' if stats.entries == 1 else 'ies'}, "
          f"{stats.total_bytes} bytes")
    return {"entries": float(stats.entries), "bytes": float(stats.total_bytes)}


# ---------------------------------------------------------------------------
# `repro store`: diagnose and repair a JSONL result store.
# ---------------------------------------------------------------------------

def build_store_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro store`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Diagnose or repair a JSONL result store: verify reports "
                    "torn trailing lines (crashed appends) and corrupt "
                    "records without modifying the file; repair heals the "
                    "tail and quarantines corrupt lines into "
                    "<store>.corrupt.",
    )
    parser.add_argument("action", choices=("verify", "repair"),
                        help="verify: non-mutating diagnosis (exit 1 when "
                             "unhealthy); repair: heal the torn tail and "
                             "quarantine corrupt lines")
    parser.add_argument("store", help="JSONL result store path")
    return parser


def run_store(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro store verify|repair``."""
    store = api.ResultStore(args.store)
    try:
        if args.action == "repair":
            kept, quarantined = store.repair()
            if quarantined:
                print(f"repaired {args.store}: kept {kept} record(s), "
                      f"quarantined {quarantined} line(s) -> {store.corrupt_path}")
            else:
                print(f"{args.store}: {kept} record(s), nothing to repair")
            return {"records": float(kept), "quarantined": float(quarantined)}
        check = store.verify()
    except OSError as exc:
        raise SystemExit(f"cannot access store {args.store}: {exc}") from None
    status = []
    if check.torn_tail:
        status.append("torn trailing line (crashed append; `repro store "
                      "repair` heals it)")
    if check.corrupt_lines:
        lines = ", ".join(str(n) for n in check.corrupt_lines)
        status.append(f"corrupt line(s) {lines}")
    print(f"{args.store}: {check.records} record(s)"
          + (", " + "; ".join(status) if status else ", ok"))
    if not check.ok:
        raise SystemExit(1)
    return {"records": float(check.records),
            "corrupt": float(len(check.corrupt_lines))}


# ---------------------------------------------------------------------------
# The `stream` subcommand: batched arrivals + continuous queries.
# ---------------------------------------------------------------------------

def build_stream_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro stream`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description="Streaming distributed k-means: sources ingest timestamped "
                    "batches into merge-and-reduce coreset trees; the server "
                    "answers queries at any point in the stream.",
    )
    parser.add_argument("--dataset", choices=("mnist", "neurips"), default="mnist",
                        help="synthetic benchmark dataset to stream")
    parser.add_argument("--n", type=int, default=None, help="dataset cardinality override")
    parser.add_argument("--d", type=int, default=None, help="dataset dimension override")
    parser.add_argument("--algorithm",
                        choices=registry.registered_names(streaming=True),
                        default="stream-fss",
                        help="registered streaming composition to run")
    parser.add_argument("--k", type=int, default=2, help="number of clusters")
    parser.add_argument("--sources", type=int, default=4,
                        help="number of concurrently streaming data sources")
    parser.add_argument("--topology", choices=("star", "tree"), default=None,
                        help="aggregation topology: star = flat source->server "
                             "fold (default), tree = balanced aggregator tree")
    parser.add_argument("--fan-in", type=int, default=None,
                        help="children per aggregator for --topology tree "
                             "(implies --topology tree when given alone)")
    parser.add_argument("--batch-size", type=int, default=512,
                        help="rows per timestamped batch")
    parser.add_argument("--window", type=int, default=None,
                        help="sliding window in batches (default: full prefix)")
    parser.add_argument("--query-every", type=int, default=None,
                        help="answer a k-means query every N batch steps "
                             "(default: only at end of stream)")
    parser.add_argument("--coreset-size", type=int, default=300,
                        help="per-bucket coreset cardinality")
    parser.add_argument("--pca-rank", type=int, default=None,
                        help="FSS intrinsic rank t")
    parser.add_argument("--jl-dimension", type=int, default=None,
                        help="JL target dimension d'")
    parser.add_argument("--quantize-bits", type=int, default=None,
                        help="significant bits kept by the rounding quantizer "
                             "(default: no quantization)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads for per-source batch compression "
                             "(1 = sequential, 0 = all cores; results are "
                             "identical either way)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    _add_network_arguments(parser)
    return parser


def run_stream(args: argparse.Namespace) -> Dict[str, float]:
    """Execute one streaming run and print the per-query trajectory.

    Returns the final-query summary row for programmatic callers and tests.
    """
    from repro.kmeans.cost import kmeans_cost
    from repro.metrics.evaluation import EvaluationContext, evaluate_report
    from repro.quantization.bits import DOUBLE_PRECISION_BITS

    if args.topology == "tree" and args.fan_in is None:
        raise SystemExit("--topology tree requires --fan-in")
    if args.topology == "star" and args.fan_in is not None:
        raise SystemExit("--fan-in applies only to --topology tree")
    points, spec = load_benchmark_dataset(args.dataset, n=args.n, d=args.d, seed=args.seed)
    quantizer: Optional[RoundingQuantizer] = None
    if args.quantize_bits is not None and args.quantize_bits < 53:
        quantizer = RoundingQuantizer(args.quantize_bits)
    try:
        # create_pipeline is strict by default: a knob the composition does
        # not accept is an error, not a silent drop.
        engine = registry.create_pipeline(
            args.algorithm,
            k=args.k,
            coreset_size=args.coreset_size,
            pca_rank=args.pca_rank,
            jl_dimension=args.jl_dimension,
            quantizer=quantizer,
            batch_size=args.batch_size,
            window=args.window,
            query_every=args.query_every,
            seed=args.seed,
            jobs=getattr(args, "jobs", None),
            topology=(
                "tree"
                if args.topology is None and args.fan_in is not None
                else args.topology
            ),
            fan_in=args.fan_in,
            **_network_settings(args),
        )
    except TypeError as exc:
        raise SystemExit(f"invalid flags for {args.algorithm}: {exc}") from None
    topology_note = (
        f", topology=tree(fan_in={args.fan_in})" if args.fan_in is not None else ""
    )
    print(f"dataset: {spec.name} (n={spec.n}, d={spec.d}), algorithm: {args.algorithm}, "
          f"k={args.k}, sources={args.sources}, batch={args.batch_size}, "
          f"window={engine.window if engine.window is not None else 'none'}"
          f"{topology_note}")

    report = engine.run_on_dataset(points, num_sources=args.sources, partition_seed=args.seed)

    context = EvaluationContext.build(points, args.k, seed=args.seed)
    raw_bits = DOUBLE_PRECISION_BITS * spec.n * spec.d
    print(f"{'step':>6} {'norm. cost':>12} {'norm. comm':>12} {'summary':>9} {'buckets':>9}")
    for query in report.queries:
        cost = kmeans_cost(points, query.centers)
        normalized = cost / context.reference_cost if context.reference_cost > 0 else float("inf")
        print(f"{query.time:>6} {normalized:>12.4f} "
              f"{query.windowed_bits / raw_bits:>12.6f} "
              f"{query.summary_cardinality:>9} {query.live_buckets:>9}")

    evaluation = evaluate_report(report, context)
    row = {
        "normalized_cost": evaluation.normalized_cost,
        "normalized_communication": evaluation.normalized_communication,
        "source_seconds": evaluation.source_seconds,
        "queries": float(len(report.queries)),
        "max_live_buckets": report.details["max_live_buckets"],
        "participating_sources": float(report.participating_sources),
    }
    print(f"final normalized k-means cost : {row['normalized_cost']:.4f}")
    print(f"final normalized communication: {row['normalized_communication']:.6f}")
    print(f"max live buckets per source   : {int(row['max_live_buckets'])}")
    _print_degradation(report)
    return row


# ---------------------------------------------------------------------------
# `repro serve`: the live clustering daemon (real transport, many clients).
# ---------------------------------------------------------------------------

def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro serve`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the live clustering daemon: accept SourceUpdate "
                    "uplinks from concurrent clients over newline-delimited "
                    "JSON, fold them into per-tenant streaming servers, and "
                    "answer weighted k-means queries mid-stream.  Delivery "
                    "is at-least-once safe: duplicate or stale updates are "
                    "acked without changing state, gaps are typed rejections "
                    "the client replays from.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=9009,
                        help="TCP port (0 picks an ephemeral port; see "
                             "--port-file)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here once listening "
                             "(how scripts find an ephemeral port)")
    parser.add_argument("--k", type=int, default=2, help="clusters per query")
    parser.add_argument("--n-init", type=int, default=5,
                        help="per-query k-means restarts")
    parser.add_argument("--max-iterations", type=int, default=100,
                        help="per-query Lloyd iteration cap")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; each tenant's solver stream "
                             "derives from (seed, tenant)")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="persist daemon state here (atomically, after "
                             "registrations, every --snapshot-every applied "
                             "folds, and on graceful shutdown)")
    parser.add_argument("--snapshot-every", type=int, default=1, metavar="N",
                        help="applied folds between snapshot writes "
                             "(default 1: every acked fold is durable)")
    parser.add_argument("--restore", default=None, metavar="PATH",
                        help="restore tenant state from a snapshot file "
                             "before serving")
    return parser


def run_serve(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro serve``: run the daemon until SIGTERM/SIGINT (or a
    protocol ``shutdown`` request), then persist a final snapshot."""
    import asyncio
    from pathlib import Path

    from repro.serve.daemon import ServeDaemon, load_snapshot

    try:
        daemon = ServeDaemon(
            k=args.k, n_init=args.n_init, max_iterations=args.max_iterations,
            seed=args.seed, host=args.host, port=args.port,
            snapshot_path=args.snapshot, snapshot_every=args.snapshot_every,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid serve flags: {exc}") from None
    restored = 0
    if args.restore:
        try:
            state = load_snapshot(args.restore)
            daemon.restore_state(state)
        except OSError as exc:
            raise SystemExit(f"cannot read snapshot {args.restore}: {exc}") from None
        except (ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"invalid snapshot {args.restore}: {exc}") from None
        restored = len(state.get("tenants", {}))

    def ready(host: str, port: int) -> None:
        print(f"repro serve: listening on {host}:{port} "
              f"(k={args.k}, {restored} tenant(s) restored)", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{port}\n")

    asyncio.run(daemon.run(ready=ready, install_signal_handlers=True))
    print(f"repro serve: stopped ({daemon.snapshot_writes} snapshot write(s))")
    return {"tenants": float(len(daemon.state()['tenants'])),
            "snapshot_writes": float(daemon.snapshot_writes)}


# ---------------------------------------------------------------------------
# `repro client`: stream one source's batches against a live daemon.
# ---------------------------------------------------------------------------

def build_client_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro client`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="Drive one streaming source against a live `repro "
                    "serve` daemon: compress batches locally with a "
                    "registered stream-* composition, uplink the bucket "
                    "deltas until acked, and query mid-stream.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="daemon address")
    parser.add_argument("--port", type=int, required=True, help="daemon port")
    parser.add_argument("--tenant", default="default",
                        help="tenant whose server folds this stream")
    parser.add_argument("--source-id", default="source-0",
                        help="this client's registered source identity")
    parser.add_argument("--dataset", choices=("mnist", "neurips"), default="mnist",
                        help="synthetic benchmark dataset to stream")
    parser.add_argument("--n", type=int, default=None, help="dataset cardinality override")
    parser.add_argument("--d", type=int, default=None, help="dataset dimension override")
    parser.add_argument("--algorithm",
                        choices=registry.registered_names(streaming=True),
                        default="stream-fss",
                        help="streaming composition applied to every batch")
    parser.add_argument("--k", type=int, default=2, help="number of clusters")
    parser.add_argument("--batch-size", type=int, default=512,
                        help="rows per uplinked batch")
    parser.add_argument("--batches", type=int, default=None,
                        help="stop after this many batches (default: stream "
                             "the whole dataset)")
    parser.add_argument("--coreset-size", type=int, default=300,
                        help="per-bucket coreset cardinality")
    parser.add_argument("--pca-rank", type=int, default=None,
                        help="FSS intrinsic rank t")
    parser.add_argument("--jl-dimension", type=int, default=None,
                        help="JL target dimension d'")
    parser.add_argument("--quantize-bits", type=int, default=None,
                        help="significant bits kept by the rounding quantizer")
    parser.add_argument("--window", type=int, default=None,
                        help="sliding window in batches")
    parser.add_argument("--query-every", type=int, default=None,
                        help="query the daemon every N delivered batches")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (clients sharing a tenant must "
                             "share it so their DR maps agree)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-request socket timeout in seconds")
    parser.add_argument("--retry-deadline", type=float, default=30.0,
                        help="keep retrying unacked folds for this many "
                             "seconds across reconnects")
    return parser


def run_client(args: argparse.Namespace) -> Dict[str, float]:
    """Execute ``repro client``: register, stream, deliver-until-acked."""
    from repro.datasets.streams import iter_batches
    from repro.serve.client import ServeClient, ServeError, ServeSource

    points, spec = load_benchmark_dataset(args.dataset, n=args.n, d=args.d,
                                          seed=args.seed)
    quantizer: Optional[RoundingQuantizer] = None
    if args.quantize_bits is not None and args.quantize_bits < 53:
        quantizer = RoundingQuantizer(args.quantize_bits)
    try:
        engine = registry.create_pipeline(
            args.algorithm,
            k=args.k,
            coreset_size=args.coreset_size,
            pca_rank=args.pca_rank,
            jl_dimension=args.jl_dimension,
            quantizer=quantizer,
            batch_size=args.batch_size,
            window=args.window,
            seed=args.seed,
        )
    except TypeError as exc:
        raise SystemExit(f"invalid flags for {args.algorithm}: {exc}") from None
    batches = list(iter_batches(points, args.batch_size))
    if args.batches is not None:
        batches = batches[: args.batches]
    if not batches:
        raise SystemExit("the dataset yielded no batches")
    source = engine.standalone_source(args.source_id, batches[0].shape)

    print(f"dataset: {spec.name} (n={spec.n}, d={spec.d}), "
          f"algorithm: {args.algorithm}, source: {args.source_id}, "
          f"tenant: {args.tenant}, batches: {len(batches)}")
    applied = duplicates = queries = 0
    try:
        with ServeClient(args.host, args.port, timeout=args.timeout,
                         retry_deadline=args.retry_deadline) as client:
            serve_source = ServeSource(source, client, tenant=args.tenant)
            watermark = serve_source.register()
            print(f"registered {args.source_id} (server watermark: {watermark})")
            for index, batch in enumerate(batches):
                ack = serve_source.ingest(batch, index)
                if ack["result"] == "applied":
                    applied += 1
                else:
                    duplicates += 1
                if (args.query_every is not None
                        and (index + 1) % args.query_every == 0):
                    queries += _print_query_row(serve_source, index)
            queries += _print_query_row(serve_source, len(batches) - 1,
                                             final=True)
    except ServeError as exc:
        raise SystemExit(f"server rejected the stream: {exc}") from None
    except (OSError, ConnectionError) as exc:
        raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}") from None
    print(f"delivered {applied + duplicates} update(s) "
          f"({applied} applied, {duplicates} duplicate ack(s)), "
          f"{queries} quer{'y' if queries == 1 else 'ies'}")
    return {"delivered": float(applied + duplicates),
            "applied": float(applied),
            "duplicates": float(duplicates),
            "queries": float(queries)}


def _print_query_row(serve_source, step: int, final: bool = False) -> int:
    """One mid-stream query printed as a trajectory row; returns 1 when the
    daemon answered, 0 when its summary is still empty (a clean one-liner
    instead of a stack trace)."""
    from repro.serve.client import ServeError

    try:
        answer = serve_source.query()
    except ServeError as exc:
        if exc.code == "empty-summary":
            print(f"step {step}: the server holds no summary yet")
            return 0
        raise
    label = "final query" if final else f"query@{step}"
    print(f"{label}: cost={answer['cost']:.4f} "
          f"summary={answer['summary_cardinality']} "
          f"buckets={answer['live_buckets']} "
          f"folded={answer['updates_folded']}")
    return 1


#: Subcommand name -> (parser builder, executor).
_SUBCOMMANDS = {
    "run": (build_run_parser, run_spec),
    "sweep": (build_sweep_parser, run_sweep),
    "report": (build_report_parser, run_report),
    "stream": (build_stream_parser, run_stream),
    "serve": (build_serve_parser, run_serve),
    "client": (build_client_parser, run_client),
    "cache": (build_cache_parser, run_cache),
    "store": (build_store_parser, run_store),
}


def main(argv=None) -> int:
    """Console entry point."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        build_subparser, execute = _SUBCOMMANDS[argv[0]]
        execute(build_subparser().parse_args(argv[1:]))
        return 0
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_algorithms:
        print(list_algorithms())
        return 0
    run(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
