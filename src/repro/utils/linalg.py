"""Linear-algebra helpers shared by the DR, CR, and distributed subsystems.

These wrap :mod:`numpy.linalg` with the conventions used throughout the
paper: datasets are row-major matrices ``A_P`` of shape ``(n, d)`` (one data
point per row), and projections are applied as ``A_P @ Pi`` for a projection
matrix ``Pi`` of shape ``(d, d')``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.random import SeedLike, as_generator


def as_float_array(points: np.ndarray) -> np.ndarray:
    """Return ``points`` as a float array, preserving ``float32``/``float64``.

    Contiguous float arrays pass through without a copy; every other dtype is
    cast to ``float64`` (the library-wide default).  This is the dtype policy
    of all numerical kernels: computations run in the input's precision, so a
    caller opting into ``float32`` keeps the smaller footprint end to end.
    """
    arr = np.asarray(points)
    if arr.dtype == np.float32 or arr.dtype == np.float64:
        return arr
    return arr.astype(np.float64)


def squared_norms(points: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms of a ``(n, d)`` matrix."""
    points = as_float_array(points)
    if points.ndim == 1:
        points = points[None, :]
    return np.einsum("ij,ij->i", points, points)


def pairwise_squared_distances(
    a: np.ndarray,
    b: np.ndarray,
    b_squared_norms: np.ndarray = None,
    a_squared_norms: np.ndarray = None,
    out: np.ndarray = None,
) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``.

    Returns a matrix of shape ``(len(a), len(b))``.  Uses the expansion
    ``|x - y|^2 = |x|^2 - 2 x.y + |y|^2`` and clips tiny negative values
    produced by floating-point cancellation.

    ``b_squared_norms`` (and symmetrically ``a_squared_norms``) let blockwise
    callers that sweep many ``a`` blocks against one fixed ``b`` (e.g.
    nearest-center assignment) pass ``squared_norms(b)`` precomputed instead
    of recomputing it per block.  ``out`` supplies a preallocated
    ``(len(a), len(b))`` buffer the whole computation runs in — blockwise
    sweeps reuse one buffer across blocks instead of allocating a distance
    matrix per block.

    The computation preserves the input floating dtype: ``float32`` inputs
    are processed (and returned) in ``float32`` without a silent promotion
    copy; contiguous ``float64`` inputs are used as-is, copy-free.
    """
    a = np.atleast_2d(as_float_array(a))
    b = np.atleast_2d(as_float_array(b))
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: a has {a.shape[1]} columns, b has {b.shape[1]}"
        )
    if b_squared_norms is None:
        b_squared_norms = squared_norms(b)
    if a_squared_norms is None:
        a_squared_norms = squared_norms(a)
    if out is None:
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.result_type(a, b))
    # In-place evaluation of |a|^2 - 2 a.b + |b|^2 inside the (possibly
    # caller-provided) buffer; the operation order matches the naive
    # expression bit for bit.
    np.matmul(a, b.T, out=out)
    out *= -2.0
    out += a_squared_norms[:, None]
    out += b_squared_norms[None, :]
    np.maximum(out, 0.0, out=out)
    return out


def safe_svd(matrix: np.ndarray, full_matrices: bool = False) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD with a fallback for the rare LAPACK non-convergence case.

    Returns ``(U, s, Vt)`` such that ``matrix ≈ U @ diag(s) @ Vt``.
    """
    matrix = np.asarray(matrix, dtype=float)
    try:
        return np.linalg.svd(matrix, full_matrices=full_matrices)
    except np.linalg.LinAlgError:
        # Jitter the matrix very slightly; gesdd occasionally fails on
        # rank-deficient inputs where gesvd-style perturbation succeeds.
        jitter = 1e-12 * np.linalg.norm(matrix, ord="fro")
        perturbed = matrix + jitter * np.eye(*matrix.shape[:2], M=matrix.shape[1])[: matrix.shape[0]]
        return np.linalg.svd(perturbed, full_matrices=full_matrices)


def randomized_svd(
    matrix: np.ndarray,
    rank: int,
    oversample: int = 10,
    power_iterations: int = 2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD (Halko–Martinsson–Tropp sketch-and-solve).

    Used by the approximate-PCA path of FSS when the exact SVD would be the
    complexity bottleneck.  Returns ``(U, s, Vt)`` with ``rank`` components.
    """
    matrix = np.asarray(matrix, dtype=float)
    n, d = matrix.shape
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    target = min(rank + oversample, min(n, d))
    rng = as_generator(seed)

    sketch = rng.standard_normal((d, target))
    sample = matrix @ sketch
    for _ in range(power_iterations):
        sample = matrix @ (matrix.T @ sample)
    q, _ = np.linalg.qr(sample)
    small = q.T @ matrix
    u_small, s, vt = safe_svd(small, full_matrices=False)
    u = q @ u_small
    keep = min(rank, s.shape[0])
    return u[:, :keep], s[:keep], vt[:keep, :]


def moore_penrose_inverse(matrix: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Moore–Penrose pseudo-inverse, used to lift centers back through a
    (non-invertible) linear DR map as described in Section 3.1 of the paper."""
    return np.linalg.pinv(np.asarray(matrix, dtype=float), rcond=rcond)


def project_onto_top_singular_subspace(
    matrix: np.ndarray, rank: int, seed: SeedLike = None, approximate: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Project rows of ``matrix`` onto the span of its top ``rank`` right
    singular vectors.

    Returns ``(projected, basis)`` where ``basis`` has shape ``(d, rank)`` and
    ``projected = matrix @ basis @ basis.T`` (still expressed in the original
    d-dimensional coordinates, as FSS requires).
    """
    matrix = np.asarray(matrix, dtype=float)
    rank = int(min(rank, min(matrix.shape)))
    if approximate:
        _, _, vt = randomized_svd(matrix, rank, seed=seed)
    else:
        _, _, vt = safe_svd(matrix, full_matrices=False)
        vt = vt[:rank]
    basis = vt.T
    projected = matrix @ basis @ basis.T
    return projected, basis


def frobenius_tail_energy(matrix: np.ndarray, rank: int) -> float:
    """Sum of squared singular values beyond ``rank`` — the constant Δ that
    FSS adds to the coreset cost (Definition 3.2)."""
    s = np.linalg.svd(np.asarray(matrix, dtype=float), compute_uv=False)
    if rank >= s.shape[0]:
        return 0.0
    tail = s[rank:]
    return float(np.sum(tail**2))
