"""Tests for repro.metrics — evaluation context and experiment harness."""

import numpy as np
import pytest

from repro.core.pipelines import JLFSSPipeline, NoReductionPipeline
from repro.core.distributed_pipelines import BKLWPipeline
from repro.metrics.evaluation import EvaluationContext, evaluate_report
from repro.metrics.experiment import (
    AlgorithmSummary,
    ExperimentResult,
    ExperimentRunner,
    empirical_cdf,
)


@pytest.fixture(scope="module")
def context(high_dim_blobs):
    points, _, _ = high_dim_blobs
    return EvaluationContext.build(points, k=3, n_init=3, seed=0)


class TestEvaluationContext:
    def test_fields(self, context, high_dim_blobs):
        points, _, _ = high_dim_blobs
        assert context.n == points.shape[0]
        assert context.d == points.shape[1]
        assert context.reference_centers.shape == (3, points.shape[1])
        assert context.reference_cost > 0.0

    def test_evaluate_report_normalized_cost_at_least_one_for_reference(self, context):
        report = JLFSSPipeline(k=3, seed=1, coreset_size=150).run(context.points)
        evaluation = evaluate_report(report, context)
        assert evaluation.normalized_cost >= 0.95  # small slack for solver noise
        assert evaluation.normalized_communication < 1.0
        assert evaluation.algorithm == report.algorithm

    def test_nr_evaluation_is_baseline(self, context):
        report = NoReductionPipeline(k=3, seed=2).run(context.points)
        evaluation = evaluate_report(report, context)
        assert evaluation.normalized_communication == pytest.approx(1.0)


class TestEmpiricalCdf:
    def test_monotone_and_bounded(self):
        values, fractions = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert np.array_equal(values, [1.0, 2.0, 3.0])
        assert np.array_equal(fractions, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))


class TestExperimentResultAggregation:
    def test_summary_and_table(self, context):
        result = ExperimentResult()
        for seed in range(3):
            report = JLFSSPipeline(k=3, seed=seed, coreset_size=100).run(context.points)
            result.add("JL+FSS", evaluate_report(report, context))
        summary = result.summary()["JL+FSS"]
        assert isinstance(summary, AlgorithmSummary)
        assert summary.runs == 3
        assert summary.mean_normalized_cost >= 0.9
        table = result.table("normalized_communication")
        assert "JL+FSS" in table

    def test_metric_samples_missing_label(self):
        result = ExperimentResult()
        with pytest.raises(KeyError):
            result.metric_samples("nope", "normalized_cost")

    def test_missing_label_error_lists_available(self, context):
        result = ExperimentResult()
        report = JLFSSPipeline(k=3, seed=0, coreset_size=100).run(context.points)
        result.add("JL+FSS", evaluate_report(report, context))
        with pytest.raises(KeyError, match="JL\\+FSS"):
            result.metric_samples("nope", "normalized_cost")

    def test_unknown_metric_error_lists_available(self, context):
        # A typo used to surface as a bare AttributeError from getattr;
        # now it's a KeyError naming the valid metric fields.
        result = ExperimentResult()
        report = JLFSSPipeline(k=3, seed=0, coreset_size=100).run(context.points)
        result.add("JL+FSS", evaluate_report(report, context))
        with pytest.raises(KeyError, match="normalized_cost"):
            result.metric_samples("JL+FSS", "normalised_cost")
        with pytest.raises(KeyError, match="normalized_communication"):
            result.table("bits")


class TestExperimentRunner:
    def test_single_source_runs(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=2, seed=0, reference_n_init=3)
        result = runner.run_single_source({
            "JL+FSS": lambda seed: JLFSSPipeline(k=3, seed=seed, coreset_size=100),
        })
        samples = result.metric_samples("JL+FSS", "normalized_cost")
        assert samples.shape == (2,)
        assert np.all(samples > 0)

    def test_multi_source_runs(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=2, seed=1, reference_n_init=3)
        result = runner.run_multi_source(
            {"BKLW": lambda seed: BKLWPipeline(k=3, seed=seed, total_samples=60, pca_rank=6)},
            num_sources=3,
        )
        assert result.metric_samples("BKLW", "normalized_cost").shape == (2,)

    def test_type_mismatch_detected(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=1, seed=2, reference_n_init=2)
        with pytest.raises(TypeError):
            runner.run_single_source({
                "BKLW": lambda seed: BKLWPipeline(k=3, seed=seed, total_samples=50),
            })
        with pytest.raises(TypeError):
            runner.run_multi_source({
                "JL+FSS": lambda seed: JLFSSPipeline(k=3, seed=seed),
            }, num_sources=2)
