"""Tests for repro.core.configuration — the Section 6.3 optimizer."""

import numpy as np
import pytest

from repro.core.configuration import (
    QuantizerConfiguration,
    approximation_error_bound,
    communication_cost_model,
    configure_joint_reduction,
    estimate_optimal_cost_lower_bound,
    fss_cardinality_model,
    jl_dimension_model,
)
from repro.kmeans.lloyd import solve_reference_kmeans


class TestErrorBound:
    def test_reduces_to_multiplicative_bound_without_qt(self):
        eps = 0.1
        expected = (1 + eps) ** 9 / (1 - eps)
        assert approximation_error_bound(eps, 0.0) == pytest.approx(expected)

    def test_monotone_in_epsilon_and_qt(self):
        assert approximation_error_bound(0.2, 0.0) > approximation_error_bound(0.1, 0.0)
        assert approximation_error_bound(0.1, 0.5) > approximation_error_bound(0.1, 0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            approximation_error_bound(0.0, 0.1)
        with pytest.raises(ValueError):
            approximation_error_bound(0.1, -0.1)


class TestCostModels:
    def test_cardinality_model_monotone(self):
        assert fss_cardinality_model(4, 0.2, 0.1) > fss_cardinality_model(2, 0.2, 0.1)
        assert fss_cardinality_model(2, 0.1, 0.1) > fss_cardinality_model(2, 0.3, 0.1)

    def test_dimension_model_monotone(self):
        assert jl_dimension_model(1000, 2, 0.1, 0.1) > jl_dimension_model(1000, 2, 0.3, 0.1)

    def test_communication_model_paper_constants(self):
        bits, n_prime, d_prime = communication_cost_model(
            n=10_000, d=784, k=2, epsilon=0.3, epsilon_qt=0.1, delta=0.05,
            significant_bits=10,
        )
        assert bits == pytest.approx(n_prime * d_prime * 22)

    def test_communication_model_empirical_geometry(self):
        bits, n_prime, d_prime = communication_cost_model(
            n=10_000, d=784, k=2, epsilon=0.3, epsilon_qt=0.1, delta=0.05,
            significant_bits=4, use_paper_constants=False,
            coreset_cardinality=400, coreset_dimension=30,
        )
        assert (n_prime, d_prime) == (400, 30)
        assert bits == pytest.approx(400 * 30 * 16)

    def test_empirical_geometry_requires_sizes(self):
        with pytest.raises(ValueError):
            communication_cost_model(
                n=100, d=10, k=2, epsilon=0.2, epsilon_qt=0.0, delta=0.1,
                significant_bits=4, use_paper_constants=False,
            )


class TestLowerBound:
    def test_lower_bound_below_optimal(self, blobs):
        points, _, _ = blobs
        reference = solve_reference_kmeans(points, 4, n_init=5, seed=0)
        bound = estimate_optimal_cost_lower_bound(points, 4, seed=1)
        assert 0 < bound <= reference.cost + 1e-9


class TestConfigureJointReduction:
    def test_returns_feasible_configuration(self):
        config = configure_joint_reduction(
            n=5000, d=784, k=2, error_bound=2.0,
            optimal_cost_lower_bound=100.0, max_norm=1.5,
        )
        assert isinstance(config, QuantizerConfiguration)
        assert 1 <= config.significant_bits <= 52
        assert config.predicted_error <= 2.0 + 1e-9
        assert config.predicted_communication > 0

    def test_tighter_bound_needs_more_bits(self):
        loose = configure_joint_reduction(
            n=5000, d=784, k=2, error_bound=3.0,
            optimal_cost_lower_bound=50.0, max_norm=1.5,
        )
        tight = configure_joint_reduction(
            n=5000, d=784, k=2, error_bound=1.3,
            optimal_cost_lower_bound=50.0, max_norm=1.5,
        )
        assert tight.significant_bits >= loose.significant_bits
        assert tight.epsilon <= loose.epsilon + 1e-12

    def test_empirical_geometry_configuration(self):
        config = configure_joint_reduction(
            n=5000, d=784, k=2, error_bound=1.5,
            optimal_cost_lower_bound=200.0, max_norm=1.0,
            use_paper_constants=False,
            coreset_cardinality=400, coreset_dimension=40,
        )
        assert config.coreset_cardinality == 400
        assert config.coreset_dimension == 40

    def test_infeasible_bound_raises(self):
        with pytest.raises(ValueError):
            configure_joint_reduction(
                n=10**6, d=784, k=2, error_bound=1.0001,
                optimal_cost_lower_bound=1e-6, max_norm=10.0,
            )

    def test_error_bound_must_exceed_one(self):
        with pytest.raises(ValueError):
            configure_joint_reduction(
                n=100, d=10, k=2, error_bound=1.0, optimal_cost_lower_bound=1.0
            )

    def test_custom_grid_respected(self):
        config = configure_joint_reduction(
            n=5000, d=784, k=2, error_bound=2.0,
            optimal_cost_lower_bound=100.0, max_norm=1.5,
            significant_bits_grid=[20, 30],
        )
        assert config.significant_bits in (20, 30)
