"""End-to-end tests of tree-topology streaming runs: star bit-parity,
determinism, per-hop metering, quality, and aggregator fault degradation."""

import numpy as np
import pytest

from repro.core.streaming import StreamingEngine
from repro.datasets import make_gaussian_mixture
from repro.distributed.conditions import FaultPlan
from repro.kmeans.cost import kmeans_cost
from repro.stages.cr import FSSStage
from repro.stages.qt import QuantizeStage
from repro.quantization.rounding import RoundingQuantizer
from repro.topology import Topology

K = 3
D = 10
BATCH = 64
NUM_SOURCES = 6
BATCHES_PER_SOURCE = 5


@pytest.fixture(scope="module")
def shards():
    n = NUM_SOURCES * BATCH * BATCHES_PER_SOURCE
    points, _, _ = make_gaussian_mixture(n=n, d=D, k=K, separation=6.0, seed=33)
    return np.array_split(points, NUM_SOURCES)


def make_engine(**kwargs):
    defaults = dict(
        k=K, batch_size=BATCH, seed=47, server_n_init=2, server_max_iterations=50
    )
    defaults.update(kwargs)
    return StreamingEngine([FSSStage(size=50)], **defaults)


class TestStarParity:
    def test_star_argument_bit_identical_to_default(self, shards):
        default = make_engine().run(shards)
        star = make_engine(topology="star").run(shards)
        np.testing.assert_array_equal(default.centers, star.centers)
        assert default.communication_scalars == star.communication_scalars
        assert default.communication_bits == star.communication_bits
        assert default.tag_scalars == star.tag_scalars

    def test_explicit_star_topology_bit_identical(self, shards):
        default = make_engine().run(shards)
        star = make_engine(topology=Topology.star(NUM_SOURCES)).run(shards)
        np.testing.assert_array_equal(default.centers, star.centers)
        assert default.tag_scalars == star.tag_scalars

    def test_degenerate_tree_is_the_flat_path(self, shards):
        # fan_in >= num_sources builds no aggregators: exact star behavior.
        default = make_engine().run(shards)
        degenerate = make_engine(topology="tree", fan_in=16).run(shards)
        np.testing.assert_array_equal(default.centers, degenerate.centers)
        assert "topology_hops" not in degenerate.details


class TestTreeRuns:
    def test_tree_run_is_deterministic(self, shards):
        reports = [
            make_engine(topology="tree", fan_in=2).run(shards) for _ in range(2)
        ]
        np.testing.assert_array_equal(reports[0].centers, reports[1].centers)
        assert reports[0].communication_bits == reports[1].communication_bits
        assert reports[0].tag_scalars == reports[1].tag_scalars

    def test_per_hop_tags_and_details(self, shards):
        report = make_engine(topology="tree", fan_in=2).run(shards)
        # balanced(6, 2): three level-1 aggregators, two level-2, 3 hops.
        assert report.details["topology_hops"] == 3
        assert report.details["num_aggregators"] == 5
        assert report.details["aggregator_merges"] > 0
        assert report.details["failed_aggregators"] == 0
        tags = report.tag_scalars
        for hop in ("@h1", "@h2"):
            assert any(t.endswith(hop) for t in tags), (hop, sorted(tags))
        # Sources keep the plain hop-0 tags; every upward hop is uplink, so
        # the totals strictly exceed a flat run's.
        flat = make_engine().run(shards)
        assert tags["stream-points"] == flat.tag_scalars["stream-points"]
        assert report.communication_scalars > flat.communication_scalars
        assert report.details["aggregator_seconds"] > 0
        assert (
            report.details["total_aggregator_seconds"]
            >= report.details["aggregator_seconds"]
        )

    def test_tree_quality_within_tolerance_of_flat(self, shards):
        points = np.vstack(shards)
        flat = make_engine().run(shards)
        tree = make_engine(topology="tree", fan_in=2).run(shards)
        flat_cost = kmeans_cost(points, flat.centers)
        tree_cost = kmeans_cost(points, tree.centers)
        # Each extra hop is an exact merge plus one more coreset reduction:
        # the summary stays a coreset of the same stream, so the answered
        # centers stay in the flat fold's cost regime.
        assert tree_cost <= flat_cost * 1.3 + 1e-9

    def test_explicit_irregular_topology(self, shards):
        # Sources 0-3 share an aggregator; 4 and 5 uplink directly.
        topo = Topology.from_edges(
            [
                ("source-0", "agg-1-0"),
                ("source-1", "agg-1-0"),
                ("source-2", "agg-1-0"),
                ("source-3", "agg-1-0"),
                ("source-4", "server"),
                ("source-5", "server"),
                ("agg-1-0", "server"),
            ]
        )
        report = make_engine(topology=topo).run(shards)
        assert report.details["topology_hops"] == 2
        assert report.details["num_aggregators"] == 1
        assert np.isfinite(report.centers).all()

    def test_windowed_tree_run(self, shards):
        report = make_engine(topology="tree", fan_in=2, window=3, query_every=2).run(
            shards
        )
        assert report.details["window"] == 3
        assert report.details["topology_hops"] == 3
        # Windowed headline counts expired batches out; the cumulative
        # detail keeps the full metered uplink.
        assert report.communication_scalars <= report.details["cumulative_scalars"]
        assert len(report.queries) >= 2
        assert np.isfinite(report.centers).all()

    def test_quantized_tree_run_tags_hops(self, shards):
        engine = StreamingEngine(
            [FSSStage(size=50), QuantizeStage(RoundingQuantizer(12))],
            k=K,
            batch_size=BATCH,
            seed=47,
            topology="tree",
            fan_in=3,
        )
        report = engine.run(shards)
        assert report.quantizer_bits == 12
        # Quantized points travel quantized on every hop: the bit total is
        # below the 64-bit baseline implied by the scalar total.
        assert report.communication_bits < report.communication_scalars * 64
        assert any(t == "stream-points@h1" for t in report.tag_scalars)


@pytest.mark.chaos
class TestAggregatorFaults:
    def test_dead_aggregator_degrades_only_its_subtree(self, shards):
        # balanced(6, 2): agg-1-0 aggregates sources 0 and 1.  Killing it at
        # step 2 severs exactly that subtree; the other four sources stream
        # to the end and the run still answers.
        plan = FaultPlan(dropout={"agg-1-0": 2})
        report = make_engine(topology="tree", fan_in=2, fault_plan=plan).run(shards)
        assert report.details["failed_aggregators"] == 1
        assert report.failed_sources == 2
        assert report.participating_sources == NUM_SOURCES - 2
        # Severed sources ingested exactly the two pre-fault steps; the
        # healthy subtree delivered every batch.
        expected = 2 * 2 + (NUM_SOURCES - 2) * BATCHES_PER_SOURCE
        assert report.details["num_batches"] == expected
        assert np.isfinite(report.centers).all()
        # The answer still lands in the regime of the surviving data.
        points = np.vstack(shards)
        healthy = make_engine(topology="tree", fan_in=2).run(shards)
        assert kmeans_cost(points, report.centers) <= kmeans_cost(
            points, healthy.centers
        ) * 2.0

    def test_root_level_aggregator_death(self, shards):
        # agg-2-0 parents agg-1-0 and agg-1-1 (sources 0-3): its death takes
        # four sources and its whole aggregator subtree.
        plan = FaultPlan(dropout={"agg-2-0": 1})
        report = make_engine(topology="tree", fan_in=2, fault_plan=plan).run(shards)
        assert report.details["failed_aggregators"] == 3  # agg-2-0 + two children
        assert report.failed_sources == 4
        assert report.participating_sources == 2
        assert np.isfinite(report.centers).all()

    def test_dead_source_under_a_tree(self, shards):
        # A plain source dropout inside a subtree must not take its
        # aggregator with it: only the one source degrades.
        plan = FaultPlan(dropout={"source-3": 2})
        report = make_engine(topology="tree", fan_in=2, fault_plan=plan).run(shards)
        assert report.details["failed_aggregators"] == 0
        assert report.failed_sources == 1
        assert report.participating_sources == NUM_SOURCES - 1
