"""repro — Communication-efficient k-means for edge-based machine learning.

A faithful, laptop-scale reproduction of *Communication-efficient k-Means for
Edge-based Machine Learning* (ICDCS 2020 / arXiv:2102.04282): data sources
send small summaries — built by composing dimensionality reduction (JL
projections, PCA), cardinality reduction (sensitivity-sampling coresets,
FSS), and rounding-based quantization — to an edge server that solves
weighted k-means on the summary and lifts the centers back.

Quickstart
----------
>>> from repro import JLFSSJLPipeline, make_gaussian_mixture
>>> points, _, _ = make_gaussian_mixture(n=2000, d=100, k=5, seed=0)
>>> pipeline = JLFSSJLPipeline(k=5, seed=0)
>>> report = pipeline.run(points)
>>> report.centers.shape
(5, 100)

See ``examples/`` for end-to-end single-source, multi-source, and
quantization-sweep scenarios, and ``benchmarks/`` for the scripts that
regenerate every table and figure of the paper's evaluation section.
"""

from repro.core import (
    PipelineReport,
    StagePipeline,
    DistributedStagePipeline,
    StreamingEngine,
    StreamingReport,
    QuerySnapshot,
    SingleSourcePipeline,
    NoReductionPipeline,
    FSSPipeline,
    JLFSSPipeline,
    FSSJLPipeline,
    JLFSSJLPipeline,
    MultiSourcePipeline,
    DistributedNoReductionPipeline,
    BKLWPipeline,
    JLBKLWPipeline,
    PipelineSpec,
    register_pipeline,
    create_pipeline,
    registered_names,
    make_stage_pipeline,
    QuantizerConfiguration,
    configure_joint_reduction,
    TheoreticalCosts,
    theoretical_costs,
)
from repro.stages import (
    Stage,
    SourceState,
    StageContext,
    StageEffect,
    JLStage,
    PCAStage,
    FSSStage,
    SensitivityStage,
    UniformStage,
    QuantizeStage,
    DistributedStage,
    SharedJLStage,
    BKLWStage,
    RawGatherStage,
)
from repro.cr import Coreset, FSSCoreset, SensitivitySampler, UniformCoreset
from repro.dr import JLProjection, PCAProjection, jl_target_dimension
from repro.quantization import RoundingQuantizer, IdentityQuantizer
from repro.kmeans import WeightedKMeans, kmeans_cost, weighted_kmeans_cost
from repro.distributed import (
    EdgeCluster,
    SimulatedNetwork,
    BKLWCoreset,
    NetworkCondition,
    LinkModel,
    FaultPlan,
    DeliveryError,
    NETWORK_PRESETS,
)
from repro.datasets import (
    make_gaussian_mixture,
    make_mnist_like,
    make_neurips_like,
    load_benchmark_dataset,
    iter_batches,
    make_drifting_stream,
)
from repro.streaming import CoresetTree, StreamingServer, StreamingSource
from repro.metrics import ExperimentRunner, EvaluationContext, evaluate_report
from repro.api import (
    PipelineConfig,
    DataSpec,
    NetworkSpec,
    ExperimentSpec,
    SweepSpec,
    load_spec,
    dump_spec,
    run_experiment,
    run_sweep,
    ResultStore,
    RunRecord,
)

__version__ = "1.2.0"

__all__ = [
    "PipelineReport",
    "StagePipeline",
    "DistributedStagePipeline",
    "StreamingEngine",
    "StreamingReport",
    "QuerySnapshot",
    "CoresetTree",
    "StreamingSource",
    "StreamingServer",
    "PipelineSpec",
    "register_pipeline",
    "create_pipeline",
    "registered_names",
    "make_stage_pipeline",
    "Stage",
    "SourceState",
    "StageContext",
    "StageEffect",
    "JLStage",
    "PCAStage",
    "FSSStage",
    "SensitivityStage",
    "UniformStage",
    "QuantizeStage",
    "DistributedStage",
    "SharedJLStage",
    "BKLWStage",
    "RawGatherStage",
    "SingleSourcePipeline",
    "NoReductionPipeline",
    "FSSPipeline",
    "JLFSSPipeline",
    "FSSJLPipeline",
    "JLFSSJLPipeline",
    "MultiSourcePipeline",
    "DistributedNoReductionPipeline",
    "BKLWPipeline",
    "JLBKLWPipeline",
    "QuantizerConfiguration",
    "configure_joint_reduction",
    "TheoreticalCosts",
    "theoretical_costs",
    "Coreset",
    "FSSCoreset",
    "SensitivitySampler",
    "UniformCoreset",
    "JLProjection",
    "PCAProjection",
    "jl_target_dimension",
    "RoundingQuantizer",
    "IdentityQuantizer",
    "WeightedKMeans",
    "kmeans_cost",
    "weighted_kmeans_cost",
    "EdgeCluster",
    "SimulatedNetwork",
    "BKLWCoreset",
    "NetworkCondition",
    "LinkModel",
    "FaultPlan",
    "DeliveryError",
    "NETWORK_PRESETS",
    "make_gaussian_mixture",
    "make_mnist_like",
    "make_neurips_like",
    "load_benchmark_dataset",
    "iter_batches",
    "make_drifting_stream",
    "ExperimentRunner",
    "EvaluationContext",
    "evaluate_report",
    "PipelineConfig",
    "DataSpec",
    "NetworkSpec",
    "ExperimentSpec",
    "SweepSpec",
    "load_spec",
    "dump_spec",
    "run_experiment",
    "run_sweep",
    "ResultStore",
    "RunRecord",
    "__version__",
]
