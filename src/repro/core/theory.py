"""Closed-form communication/complexity scalings of Table 2.

The paper summarizes its analysis in Table 2: for each algorithm, the
communication cost and the data-source computational complexity as functions
of ``(n, d, k, m, ε)``.  This module evaluates those expressions (up to the
hidden constants, which cancel when comparing growth rates), so the scaling
benchmark (E9 in DESIGN.md) can check that the *measured* costs of the
implementation grow the way the theory predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class TheoreticalCosts:
    """Predicted communication cost and source complexity for one algorithm.

    Values are the Table 2 expressions evaluated without hidden constants;
    they are meaningful only for *comparisons across input sizes or across
    algorithms*, never as absolute scalar counts.
    """

    algorithm: str
    communication: float
    complexity: float


def _log(x: float) -> float:
    return math.log(max(x, 2.0))


def theoretical_costs(
    algorithm: str,
    n: int,
    d: int,
    k: int,
    epsilon: float,
    m: int = 1,
) -> TheoreticalCosts:
    """Evaluate the Table 2 row for ``algorithm`` at the given parameters.

    Supported names (case-insensitive): ``"FSS"``, ``"JL+FSS"``, ``"FSS+JL"``,
    ``"JL+FSS+JL"``, ``"BKLW"``, ``"JL+BKLW"``, and ``"NR"`` (raw data, for
    reference).
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    k = check_positive_int(k, "k")
    m = check_positive_int(m, "m")
    epsilon = check_fraction(epsilon, "epsilon")

    e2 = epsilon**2
    e4 = epsilon**4
    e6 = epsilon**6
    key = algorithm.strip().lower().replace(" ", "")

    if key in ("nr", "raw", "noreduction"):
        return TheoreticalCosts(algorithm, communication=float(n * d), complexity=0.0)
    if key == "fss":
        return TheoreticalCosts(
            algorithm,
            communication=k * d / e2,
            complexity=n * d * min(n, d),
        )
    if key in ("jl+fss", "alg1"):
        return TheoreticalCosts(
            algorithm,
            communication=k * _log(n) / e4,
            complexity=n * d / e2,
        )
    if key in ("fss+jl", "alg2"):
        return TheoreticalCosts(
            algorithm,
            communication=(k**3) / e6,
            complexity=n * d * min(n, d),
        )
    if key in ("jl+fss+jl", "alg3"):
        return TheoreticalCosts(
            algorithm,
            communication=(k**3) / e6,
            complexity=n * d / e2,
        )
    if key == "bklw":
        return TheoreticalCosts(
            algorithm,
            communication=m * k * d / e2,
            complexity=n * d * min(n, d),
        )
    if key in ("jl+bklw", "alg4"):
        return TheoreticalCosts(
            algorithm,
            communication=m * k * _log(n) / e4,
            complexity=n * d / e4,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")


#: The rows of Table 2, in the paper's order, for iteration in benchmarks.
THEORY_TABLE_ROWS = (
    "FSS",
    "JL+FSS",
    "FSS+JL",
    "JL+FSS+JL",
    "BKLW",
    "JL+BKLW",
)


def scaling_table(
    n: int, d: int, k: int, epsilon: float, m: int = 10
) -> Dict[str, TheoreticalCosts]:
    """Evaluate every Table 2 row at one parameter point."""
    return {
        name: theoretical_costs(name, n, d, k, epsilon, m=m)
        for name in THEORY_TABLE_ROWS
    }
