"""Tests for repro.kmeans.lloyd."""

import numpy as np
import pytest

from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import KMeansResult, WeightedKMeans, solve_reference_kmeans


class TestWeightedKMeans:
    def test_recovers_separated_clusters(self, blobs):
        points, labels, true_centers = blobs
        result = WeightedKMeans(k=4, n_init=3, seed=0).fit(points)
        # Each true center should have a found center nearby.
        for c in true_centers:
            distances = np.linalg.norm(result.centers - c, axis=1)
            assert distances.min() < 1.0

    def test_result_fields(self, blob_points):
        result = WeightedKMeans(k=3, n_init=2, seed=1).fit(blob_points)
        assert isinstance(result, KMeansResult)
        assert result.centers.shape == (3, blob_points.shape[1])
        assert result.labels.shape == (blob_points.shape[0],)
        assert result.cost >= 0.0
        assert result.k == 3
        assert result.restarts == 2

    def test_cost_matches_centers(self, blob_points):
        result = WeightedKMeans(k=4, n_init=2, seed=2).fit(blob_points)
        assert result.cost == pytest.approx(kmeans_cost(blob_points, result.centers), rel=1e-9)

    def test_deterministic_given_seed(self, blob_points):
        a = WeightedKMeans(k=3, n_init=2, seed=5).fit(blob_points)
        b = WeightedKMeans(k=3, n_init=2, seed=5).fit(blob_points)
        assert np.allclose(a.centers, b.centers)

    def test_more_restarts_never_worse(self, high_dim_points):
        few = WeightedKMeans(k=3, n_init=1, seed=7).fit(high_dim_points)
        many = WeightedKMeans(k=3, n_init=6, seed=7).fit(high_dim_points)
        assert many.cost <= few.cost * 1.0001

    def test_weights_shift_centers(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        weights = np.array([100.0, 100.0, 1e-6, 1e-6])
        result = WeightedKMeans(k=1, n_init=2, seed=0).fit(points, weights)
        assert abs(result.centers[0, 0] - 0.5) < 0.01

    def test_k_larger_than_n_pads_centers(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        result = WeightedKMeans(k=4, n_init=1, seed=0).fit(points)
        assert result.centers.shape == (4, 2)
        assert result.cost == pytest.approx(0.0, abs=1e-12)

    def test_all_zero_weights_raise(self, blob_points):
        with pytest.raises(ValueError):
            WeightedKMeans(k=2, seed=0).fit(blob_points, np.zeros(blob_points.shape[0]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightedKMeans(k=0)
        with pytest.raises(ValueError):
            WeightedKMeans(k=2, tolerance=-1.0)

    def test_fit_predict_labels_valid(self, blob_points):
        labels = WeightedKMeans(k=4, n_init=2, seed=3).fit_predict(blob_points)
        assert labels.min() >= 0
        assert labels.max() < 4

    def test_duplicate_points_handled(self):
        points = np.tile(np.array([[1.0, 2.0]]), (20, 1))
        result = WeightedKMeans(k=3, n_init=1, seed=0).fit(points)
        assert result.cost == pytest.approx(0.0, abs=1e-12)


class TestReferenceSolver:
    def test_reference_close_to_planted_solution(self, blobs):
        points, labels, true_centers = blobs
        result = solve_reference_kmeans(points, 4, n_init=5, seed=0)
        planted_cost = kmeans_cost(points, true_centers)
        assert result.cost <= planted_cost * 1.05

    def test_reference_is_deterministic(self, blob_points):
        a = solve_reference_kmeans(blob_points, 3, n_init=3, seed=11)
        b = solve_reference_kmeans(blob_points, 3, n_init=3, seed=11)
        assert np.allclose(a.centers, b.centers)
