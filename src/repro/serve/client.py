"""Client SDK for ``repro serve``: a retrying NDJSON connection and the
:class:`ServeSource` adapter that puts an unchanged
:class:`~repro.streaming.source.StreamingSource` behind the real wire.

Delivery model
--------------
The transport is at-least-once by construction: :meth:`ServeClient.call`
resends an idempotent request (register, fold) after any connection failure
until the retry deadline, reconnecting as needed.  That is safe *because*
the daemon's fold layer is idempotent — a fold whose ack was lost is re-sent
and acked as ``duplicate`` without changing server state.  Queries are not
idempotent (each one advances the tenant's solver seed stream), so they are
never re-sent after a send attempt; only the connect step retries.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.serve import protocol
from repro.streaming.source import SourceUpdate, StreamingSource


class ServeError(RuntimeError):
    """A protocol-level rejection from the daemon (stable ``code``)."""

    def __init__(self, code: str, message: str, payload: Dict[str, Any]) -> None:
        self.code = str(code)
        self.payload = dict(payload)
        super().__init__(f"[{self.code}] {message}")


class ServeClient:
    """A blocking NDJSON client with reconnect-and-resend retries.

    Parameters
    ----------
    host, port:
        The daemon address.
    timeout:
        Per-socket-operation timeout in seconds.
    retry_interval, retry_deadline:
        An idempotent request that hits a connection failure (daemon
        restarting, ack lost) is retried every ``retry_interval`` seconds
        until ``retry_deadline`` seconds have passed, then the last error
        propagates.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        retry_interval: float = 0.2,
        retry_deadline: float = 30.0,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.retry_interval = float(retry_interval)
        self.retry_deadline = float(retry_deadline)
        self._sock: Optional[socket.socket] = None
        self._file = None

    # ------------------------------------------------------------ transport
    def connect(self) -> None:
        """Establish the connection (idempotent)."""
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One send + one response over the live connection."""
        self.connect()
        self._file.write(protocol.dump_frame(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("the server closed the connection")
        return protocol.parse_frame(line)

    def call(self, payload: Dict[str, Any], *, idempotent: bool = True) -> Dict[str, Any]:
        """Send one request and return the response frame.

        Connection failures retry (reconnect + resend) for idempotent
        requests; non-idempotent requests only retry the *connect* step —
        once the frame may have reached the daemon, the error propagates.
        """
        deadline = time.monotonic() + self.retry_deadline
        sent = False
        while True:
            try:
                if not idempotent:
                    # Retry connecting, but never resend: track whether the
                    # frame could have left this process.
                    self.connect()
                    sent = True
                return self._request_once(payload)
            except (OSError, ConnectionError, protocol.ProtocolError) as exc:
                self.close()
                if isinstance(exc, protocol.ProtocolError):
                    raise
                if not idempotent and sent:
                    raise
                if time.monotonic() >= deadline:
                    raise
                time.sleep(self.retry_interval)

    # ------------------------------------------------------------- requests
    def healthz(self) -> Dict[str, Any]:
        return self._unwrap(self.call({"op": "healthz"}))

    def metrics(self) -> Dict[str, Any]:
        return self._unwrap(self.call({"op": "metrics"}))

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to snapshot and exit (acked before it stops)."""
        return self._unwrap(self.call({"op": "shutdown"}, idempotent=False))

    @staticmethod
    def _unwrap(response: Dict[str, Any]) -> Dict[str, Any]:
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "unknown"),
                response.get("message", "request rejected"),
                response,
            )
        return response


class ServeSource:
    """The serving counterpart of one :class:`StreamingSource`.

    Wraps the source unchanged: batches are compressed and tracked exactly
    as in the in-process engine, and the ``SourceUpdate`` bucket delta that
    the engine would fold locally crosses the wire instead.  Every update is
    delivered until acked (``applied`` or ``duplicate``), so daemon crashes
    and lost acks never lose or double-count a batch.
    """

    def __init__(
        self,
        source: StreamingSource,
        client: ServeClient,
        tenant: str = "default",
    ) -> None:
        self.source = source
        self.client = client
        self.tenant = str(tenant)

    # ------------------------------------------------------------------ API
    def register(self) -> int:
        """Registration handshake; returns the daemon's high-water mark for
        this source (-1 = nothing applied, resume from the start)."""
        response = self.client.call({
            "op": "register",
            "tenant": self.tenant,
            "source_id": self.source.source_id,
        })
        return int(ServeClient._unwrap(response)["watermark"])

    def ingest(self, batch: np.ndarray, batch_index: int) -> Dict[str, Any]:
        """Compress one batch locally, then deliver its delta until acked."""
        update = self.source.ingest(batch, batch_index)
        return self.deliver(update)

    def advance(self, batch_index: int) -> Dict[str, Any]:
        """Advance stream time without data (sliding-window retirement)."""
        return self.deliver(self.source.advance(batch_index))

    def deliver(self, update: SourceUpdate) -> Dict[str, Any]:
        """Ship one update, retrying across reconnects until acked."""
        response = self.client.call({
            "op": "fold",
            "tenant": self.tenant,
            "update": protocol.encode_update(update),
        })
        return ServeClient._unwrap(response)

    def query(self) -> Dict[str, Any]:
        """One mid-stream k-means query, centers lifted back through this
        source's DR maps (the daemon answers in the reduced space)."""
        response = ServeClient._unwrap(
            self.client.call(
                {"op": "query", "tenant": self.tenant}, idempotent=False
            )
        )
        centers = np.asarray(response["centers"], dtype=float)
        for lift in reversed(self.source.lifts or []):
            centers = lift(centers)
        response["lifted_centers"] = centers
        return response


__all__ = ["ServeClient", "ServeError", "ServeSource"]
