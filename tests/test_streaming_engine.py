"""Tests for repro.core.streaming — the streaming execution engine."""

import numpy as np
import pytest

from repro.core import registry
from repro.core.streaming import StreamingEngine, StreamingReport
from repro.datasets import make_drifting_stream, make_gaussian_mixture
from repro.stages.cr import FSSStage, SensitivityStage, UniformStage
from repro.stages.dr import JLStage, PCAStage
from repro.stages.qt import QuantizeStage


@pytest.fixture(scope="module")
def mixture():
    points, _, centers = make_gaussian_mixture(n=4000, d=20, k=3, seed=5)
    return points, centers


def make_engine(stages, **kwargs):
    defaults = dict(k=3, batch_size=400, seed=11)
    defaults.update(kwargs)
    return StreamingEngine(stages, **defaults)


class TestEngineBasics:
    def test_report_contract(self, mixture):
        points, _ = mixture
        engine = make_engine([FSSStage(size=80)], query_every=3)
        report = engine.run([points[:2000], points[2000:]])
        assert isinstance(report, StreamingReport)
        assert report.centers.shape == (3, 20)
        assert report.communication_scalars > 0
        assert report.communication_bits == report.communication_scalars * 64
        assert report.summary_cardinality > 0
        assert report.summary_dimension == 20
        assert report.source_seconds > 0
        assert report.details["num_sources"] == 2
        assert report.details["num_batches"] == 10  # 2 sources x 5 batches

    def test_queries_scheduled_and_final(self, mixture):
        points, _ = mixture
        engine = make_engine([UniformStage(60)], query_every=2)
        report = engine.run([points])  # 10 batches of 400
        times = [q.time for q in report.queries]
        assert times == [1, 3, 5, 7, 9]
        # Cumulative accounting is monotone along the stream.
        bits = [q.bits for q in report.queries]
        assert bits == sorted(bits)

    def test_streaming_is_deterministic(self, mixture):
        points, _ = mixture
        reports = [
            make_engine([FSSStage(size=60)], seed=123).run([points[:2000]])
            for _ in range(2)
        ]
        np.testing.assert_array_equal(reports[0].centers, reports[1].centers)
        assert reports[0].communication_bits == reports[1].communication_bits

    def test_requires_cr_stage(self, mixture):
        points, _ = mixture
        engine = make_engine([JLStage(8)])
        with pytest.raises(ValueError, match="CR stage"):
            engine.run([points[:800]])

    def test_empty_shards_rejected(self):
        engine = make_engine([UniformStage(10)])
        with pytest.raises(ValueError):
            engine.run([])


class TestDimensionHandling:
    def test_jl_lift_returns_to_ambient_space(self, mixture):
        points, _ = mixture
        engine = make_engine([JLStage(8), SensitivityStage(60)])
        report = engine.run([points[:2000], points[2000:]])
        assert report.centers.shape == (3, 20)
        assert report.summary_dimension == 8

    def test_derived_jl_dimension_pinned_across_short_batches(self, mixture):
        points, _ = mixture
        # 2100 rows / 400 = 6 batches, the last only 100 rows: a per-batch
        # derived JL dimension would differ for it and break merging.
        engine = make_engine([JLStage(), SensitivityStage(50)])
        report = engine.run([points[:2100]])
        assert report.centers.shape == (3, 20)

    def test_pca_stage_composes(self, mixture):
        points, _ = mixture
        engine = make_engine([PCAStage(6), SensitivityStage(50)])
        report = engine.run([points[:1600]])
        assert report.centers.shape == (3, 20)
        assert report.details["coreset_size"] if "coreset_size" in report.details else True


class TestQuantization:
    def test_stage_level_quantizer_reported_and_cheaper(self, mixture):
        points, _ = mixture
        plain = make_engine([UniformStage(60)]).run([points[:2000]])
        quantized = make_engine([UniformStage(60), QuantizeStage(8)]).run([points[:2000]])
        assert quantized.quantizer_bits == 8
        assert quantized.communication_scalars == plain.communication_scalars
        assert quantized.communication_bits < plain.communication_bits

    def test_engine_level_quantizer_sugar(self, mixture):
        from repro.quantization.rounding import RoundingQuantizer

        points, _ = mixture
        report = make_engine(
            [UniformStage(60)], quantizer=RoundingQuantizer(10)
        ).run([points[:1200]])
        assert report.quantizer_bits == 10


class TestSlidingWindow:
    def test_windowed_communication_drops_expired_batches(self, mixture):
        points, _ = mixture
        engine = make_engine([UniformStage(50)], window=3)
        report = engine.run([points])  # 10 batches, window of 3
        assert report.communication_bits < report.details["cumulative_bits"]
        assert report.communication_scalars < report.details["cumulative_scalars"]

    def test_window_follows_drift(self):
        # Clusters drift far over the stream; the windowed query must track
        # the recent batches, the unwindowed one averages the whole prefix.
        batches, final_centers = make_drifting_stream(
            num_batches=16, batch_size=250, d=8, k=1, drift=4.0, seed=9
        )
        windowed = StreamingEngine(
            [UniformStage(80)], k=1, batch_size=250, window=2, seed=3
        ).run_streams([batches])
        unwindowed = StreamingEngine(
            [UniformStage(80)], k=1, batch_size=250, seed=3
        ).run_streams([batches])
        drift_error_windowed = np.linalg.norm(windowed.centers - final_centers)
        drift_error_full = np.linalg.norm(unwindowed.centers - final_centers)
        assert drift_error_windowed < drift_error_full

    def test_exhausted_source_still_expires(self):
        # A source whose stream ended early must keep aging: once its data
        # leaves the window it must leave the server view and the query cost
        # even though the source ingests nothing anymore.
        rng = np.random.default_rng(0)
        long_batches = [rng.standard_normal((200, 4)) + 50.0 for _ in range(12)]
        short_batches = [rng.standard_normal((200, 4)) - 50.0 for _ in range(2)]
        engine = StreamingEngine(
            [UniformStage(50)], k=1, batch_size=200, window=3, seed=1
        )
        report = engine.run_streams([long_batches, short_batches])
        assert np.allclose(report.centers, 50.0, atol=2.0)

    def test_window_of_one_streams_without_crash(self, mixture):
        # Regression: the end-of-stream pass must not advance window expiry
        # past the last real batch step — with window=1 that used to empty
        # the server before the mandatory final query.
        points, _ = mixture
        engine = make_engine([UniformStage(40)], window=1)
        report = engine.run([points[:1600]])
        assert report.centers.shape == (3, 20)
        assert report.queries[-1].summary_cardinality > 0

    def test_final_query_matches_in_loop_query_at_same_step(self, mixture):
        # Regression: a query_every query landing on the last step and the
        # forced end-of-stream query must see the same windowed summary.
        points, _ = mixture
        engine = make_engine([UniformStage(50)], window=2, query_every=3)
        report = engine.run([points[:1200]])  # 3 batches; query at t=2 = last
        assert [q.time for q in report.queries] == [2]
        assert report.queries[-1].live_buckets == 2
        assert report.queries[-1].summary_cardinality == 100

    def test_expired_buckets_leave_server_and_trees(self, mixture):
        points, _ = mixture
        engine = make_engine([UniformStage(40)], window=2, query_every=1)
        report = engine.run([points[:2400]])  # 6 batches
        final = report.queries[-1]
        # At most the window's worth of buckets stays live per source.
        assert final.live_buckets <= 2
        assert report.details["live_buckets"] <= 2


class TestRegistryIntegration:
    def test_streaming_specs_registered(self):
        names = registry.registered_names(streaming=True)
        assert {"stream-fss", "stream-jl-ss", "stream-uniform-qt"} <= set(names)
        for name in names:
            assert registry.is_streaming(name)
            assert registry.is_multi_source(name)

    def test_create_pipeline_filters_streaming_kwargs(self, mixture):
        points, _ = mixture
        engine = registry.create_pipeline(
            "stream-jl-ss",
            strict=False,
            k=3,
            coreset_size=50,
            jl_dimension=8,
            batch_size=500,
            total_samples=999,  # multi-source-only kwarg: must be ignored
            seed=2,
        )
        assert isinstance(engine, StreamingEngine)
        report = engine.run([points[:1500]])
        assert report.summary_dimension == 8

    def test_window_default_of_windowed_spec(self):
        engine = registry.create_pipeline("stream-fss-window", k=2, seed=0)
        assert engine.window == 8

    def test_run_registered_accepts_streaming(self, mixture):
        from repro.metrics import ExperimentRunner

        points, _ = mixture
        runner = ExperimentRunner(points[:1500], k=3, monte_carlo_runs=1, seed=4)
        result = runner.run_registered(
            ["stream-uniform-qt"], num_sources=2, coreset_size=40, batch_size=300
        )
        (evaluation,) = result.evaluations["stream-uniform-qt"]
        assert evaluation.normalized_cost > 0
        assert evaluation.communication_bits > 0
