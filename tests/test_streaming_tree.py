"""Tests for repro.streaming.tree — the merge-and-reduce coreset tree."""

import math

import numpy as np
import pytest

from repro.cr.coreset import Coreset
from repro.streaming.tree import CoresetTree


def make_leaf(batch_index, size=8, d=3):
    rng = np.random.default_rng(batch_index)
    return Coreset(rng.standard_normal((size, d)), np.ones(size), 0.0)


def halving_reduce(coreset):
    """Deterministic reduce: keep every other point, double its weight —
    preserves the total weight exactly, which the tests exploit."""
    return Coreset(
        coreset.points[::2], coreset.weights[::2] * 2.0, coreset.shift
    )


class TestUnwindowedTree:
    def test_logarithmic_bucket_count(self):
        tree = CoresetTree(reduce=halving_reduce)
        for t in range(64):
            tree.insert(make_leaf(t), t)
            # The classic merge-and-reduce bound: at most ⌈log2(b)⌉ + 1 live
            # buckets after b batches.
            bound = math.ceil(math.log2(t + 1)) + 1 if t else 1
            assert tree.live_bucket_count <= bound, (t, tree.live_bucket_count)
        assert tree.live_bucket_count == 1  # 64 = 2^6 collapses fully
        assert tree.merges == 63

    def test_spans_partition_the_prefix(self):
        tree = CoresetTree(reduce=halving_reduce)
        for t in range(21):
            tree.insert(make_leaf(t), t)
        buckets = tree.live_buckets
        covered = []
        for bucket in buckets:
            covered.extend(range(bucket.first_batch, bucket.last_batch + 1))
        assert covered == list(range(21))

    def test_total_weight_preserved(self):
        tree = CoresetTree(reduce=halving_reduce)
        for t in range(13):
            tree.insert(make_leaf(t, size=8), t)
        merged = tree.merged_coreset()
        assert merged.total_weight == pytest.approx(13 * 8)

    def test_delta_is_net_change(self):
        tree = CoresetTree(reduce=halving_reduce)
        first = tree.insert(make_leaf(0), 0)
        assert [b.level for b in first.added] == [0]
        assert first.removed_ids == []
        second = tree.insert(make_leaf(1), 1)
        # The two leaves merged: one level-1 bucket appears, the first leaf's
        # id is retired, and the second leaf never surfaces in the delta.
        assert [b.level for b in second.added] == [1]
        assert second.removed_ids == [first.added[0].bucket_id]

    def test_expire_is_noop_without_window(self):
        tree = CoresetTree(reduce=halving_reduce)
        tree.insert(make_leaf(0), 0)
        assert tree.expire(1000) == []
        assert tree.live_bucket_count == 1

    def test_empty_tree_has_no_summary(self):
        tree = CoresetTree(reduce=halving_reduce)
        with pytest.raises(RuntimeError):
            tree.merged_coreset()


class TestWindowedTree:
    def test_buckets_fully_expire(self):
        window = 4
        tree = CoresetTree(reduce=halving_reduce, window=window)
        for t in range(32):
            tree.insert(make_leaf(t), t)
            tree.expire(t)
            for bucket in tree.live_buckets:
                # Every live bucket still touches the window (last W batches).
                assert bucket.last_batch > t - window
                # Span-capped merging: no bucket can outlive the window.
                assert bucket.span <= window

    def test_window_bounds_memory(self):
        window = 8
        tree = CoresetTree(reduce=halving_reduce, window=window)
        for t in range(200):
            tree.insert(make_leaf(t), t)
            tree.expire(t)
        # Live buckets: at most the log-depth of the window plus the frozen
        # top-level buckets awaiting expiry.
        assert tree.max_live_buckets <= 2 * (math.ceil(math.log2(window)) + 1)

    def test_expired_data_leaves_the_summary(self):
        window = 2
        tree = CoresetTree(reduce=halving_reduce, window=window)
        for t in range(10):
            tree.insert(make_leaf(t), t)
            tree.expire(t)
        merged = tree.merged_coreset()
        # Only the last `window` batches may contribute weight.
        assert merged.total_weight <= window * 8

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            CoresetTree(reduce=halving_reduce, window=0)


class TestPeakTracking:
    def test_resident_points_bounded_by_buckets(self):
        tree = CoresetTree(reduce=halving_reduce)
        leaf_size = 16
        for t in range(40):
            tree.insert(make_leaf(t, size=leaf_size), t)
        # halving_reduce caps every merged bucket at its input leaf size, so
        # residency is bounded by live buckets × leaf size.
        assert tree.resident_points <= tree.live_bucket_count * leaf_size
        assert tree.max_resident_points <= tree.max_live_buckets * leaf_size
