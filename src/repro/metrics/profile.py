"""Communication profiles: a canonical fixture of every pipeline's traffic.

The golden regression suite pins, for **all** registered compositions, the
uplink scalars/bits and the per-tag scalar table produced on a fixed seeded
dataset under the ideal network.  :func:`communication_profile` is the single
source of truth for how that fixture is computed — the committed JSON
(``tests/goldens/communication.json``), its regeneration script, and the
diffing test all call it, so the three can never drift apart.

Everything the profile contains is integer-exact (scalar counts come from
array shapes and seeded draws, bit counts from scalar counts × precision),
so the fixture is stable across platforms and BLAS builds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core import registry
from repro.datasets import make_gaussian_mixture

#: The fixed configuration the golden fixture is generated under.  Changing
#: any value invalidates the committed fixture — regenerate it via
#: ``python tests/goldens/regenerate_communication.py`` and review the diff.
GOLDEN_CONFIG: Dict[str, object] = {
    "n": 240,
    "d": 12,
    "k": 3,
    "separation": 6.0,
    "cluster_std": 0.8,
    "dataset_seed": 42,
    "pipeline_seed": 123,
    "partition_seed": 7,
    "num_sources": 3,
    "coreset_size": 40,
    "total_samples": 60,
    "pca_rank": 4,
    "jl_dimension": 8,
    "batch_size": 64,
}


#: Pipeline overrides of the tree-mode golden section: the streaming
#: compositions rerun under a balanced fan-in-2 aggregation tree, which at
#: the golden source count (3) yields two mid-tree aggregators whose hop-1
#: traffic is pinned via the ``@h1`` wire tags.
GOLDEN_TREE_OVERRIDES: Dict[str, object] = {"topology": "tree", "fan_in": 2}


def communication_profile(
    names: Optional[Iterable[str]] = None,
    config: Optional[Dict[str, object]] = None,
    pipeline_overrides: Optional[Dict[str, object]] = None,
) -> Dict[str, Dict[str, object]]:
    """Run registered compositions under the ideal network and profile them.

    Returns ``{pipeline name: {"uplink_scalars", "uplink_bits",
    "scalars_by_tag"}}`` for each name (default: every registered
    composition), using the fixed :data:`GOLDEN_CONFIG` unless overridden.
    ``pipeline_overrides`` are extra constructor kwargs applied verbatim to
    every profiled pipeline (every name must accept them).
    """
    cfg = dict(GOLDEN_CONFIG)
    if config:
        cfg.update(config)
    points, _, _ = make_gaussian_mixture(
        n=int(cfg["n"]),
        d=int(cfg["d"]),
        k=int(cfg["k"]),
        separation=float(cfg["separation"]),
        cluster_std=float(cfg["cluster_std"]),
        seed=int(cfg["dataset_seed"]),
    )
    if names is None:
        names = registry.registered_names()

    profiles: Dict[str, Dict[str, object]] = {}
    merged = {
        "k": int(cfg["k"]),
        "seed": int(cfg["pipeline_seed"]),
        "coreset_size": int(cfg["coreset_size"]),
        "total_samples": int(cfg["total_samples"]),
        "pca_rank": int(cfg["pca_rank"]),
        "jl_dimension": int(cfg["jl_dimension"]),
        "batch_size": int(cfg["batch_size"]),
    }
    for name in sorted(names):
        # One merged config covers all kinds; select each kind's subset so
        # create_pipeline can run strictly (no silent filtering).
        accepted = registry.accepted_kwargs(name)
        kwargs = {key: value for key, value in merged.items() if key in accepted}
        kwargs.update(pipeline_overrides or {})
        pipeline = registry.create_pipeline(name, strict=True, **kwargs)
        if registry.is_multi_source(name):
            report = pipeline.run_on_dataset(
                points,
                num_sources=int(cfg["num_sources"]),
                partition_seed=int(cfg["partition_seed"]),
            )
        else:
            report = pipeline.run(points)
        tags = report.tag_scalars or {}
        profiles[name] = {
            "uplink_scalars": int(report.communication_scalars),
            "uplink_bits": int(report.communication_bits),
            "scalars_by_tag": {tag: int(count) for tag, count in sorted(tags.items())},
        }
    return profiles


def tree_communication_profile(
    names: Optional[Iterable[str]] = None,
    config: Optional[Dict[str, object]] = None,
) -> Dict[str, Dict[str, object]]:
    """Profile the streaming compositions under the golden aggregation tree.

    Same dataset, seeds, and sizes as :func:`communication_profile`, but the
    sources fold through a balanced fan-in-2 tree
    (:data:`GOLDEN_TREE_OVERRIDES`), so the per-tag tables additionally pin
    the mid-tree hop traffic (the ``@h<level>`` tags).
    """
    if names is None:
        names = registry.registered_names(streaming=True)
    return communication_profile(
        names, config, pipeline_overrides=dict(GOLDEN_TREE_OVERRIDES)
    )


__all__ = [
    "GOLDEN_CONFIG",
    "GOLDEN_TREE_OVERRIDES",
    "communication_profile",
    "tree_communication_profile",
]
