"""Johnson–Lindenstrauss random projections.

A JL projection is a random linear map ``π : R^d -> R^{d'}`` that preserves
ℓ-2 norms up to ``1 ± ε`` with high probability (Lemma 3.1) and, with the
target dimension of Theorem 3.1 / Lemmas 4.1–4.2, preserves k-means costs of
all candidate center sets simultaneously.

The decisive property for the paper is *data-obliviousness*: the projection
matrix is a function only of ``(d, d', seed)``.  The data source and the edge
server can therefore derive the identical matrix from a pre-shared seed, so
describing the map costs **zero** communication at runtime — in contrast to
PCA, whose basis must be shipped.

Two matrix ensembles are provided, both satisfying the sub-Gaussian-tail
condition of Theorem 3.1:

* ``"gaussian"`` — i.i.d. ``N(0, 1/d')`` entries;
* ``"rademacher"`` — Achlioptas' database-friendly ±1/sqrt(d') entries.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dr.base import DimensionalityReducer
from repro.utils.linalg import moore_penrose_inverse
from repro.utils.random import SeedLike, as_generator
from repro.utils.validation import check_fraction, check_matrix, check_positive_int

_ENSEMBLES = ("gaussian", "rademacher")


def jl_target_dimension(
    n: int,
    k: int,
    epsilon: float,
    delta: float = 0.1,
    constant: float = 8.0,
    max_dimension: Optional[int] = None,
) -> int:
    """Target dimension ``d' = O(ε^{-2} log(nk/δ))`` from Lemma 4.1 / 4.2.

    Parameters
    ----------
    n:
        Cardinality of the point set whose pairwise point–center distances
        must be preserved (the dataset size for Lemma 4.1, or the coreset
        size for Lemma 4.2).
    k:
        Number of clustering centers.
    epsilon:
        Distortion parameter ε in (0, 1).
    delta:
        Failure probability δ in (0, 1).
    constant:
        The hidden constant; the paper's Section 6.3 uses
        ``d' <= ceil(8 log(4 n' k / δ) / ε²)``, so the default is 8.
    max_dimension:
        Optional cap (never project *up*: callers pass the input dimension).
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    epsilon = check_fraction(epsilon, "epsilon")
    delta = check_fraction(delta, "delta")
    raw = constant * math.log(4.0 * n * k / delta) / (epsilon**2)
    dimension = max(1, int(math.ceil(raw)))
    if max_dimension is not None:
        dimension = min(dimension, int(max_dimension))
    return dimension


class JLProjection(DimensionalityReducer):
    """A concrete JL random projection with a reproducible matrix.

    Parameters
    ----------
    input_dimension:
        Original dimension ``d``.
    output_dimension:
        Target dimension ``d'`` (use :func:`jl_target_dimension` to derive it
        from ``(n, k, ε, δ)``).
    seed:
        Seed shared between data source and server.  Two instances created
        with the same ``(input_dimension, output_dimension, seed, ensemble)``
        produce the identical matrix.
    ensemble:
        ``"gaussian"`` or ``"rademacher"``.
    """

    def __init__(
        self,
        input_dimension: int,
        output_dimension: int,
        seed: SeedLike = None,
        ensemble: str = "gaussian",
    ) -> None:
        self._d = check_positive_int(input_dimension, "input_dimension")
        self._d_out = check_positive_int(output_dimension, "output_dimension")
        if ensemble not in _ENSEMBLES:
            raise ValueError(f"ensemble must be one of {_ENSEMBLES}, got {ensemble!r}")
        self._ensemble = ensemble
        rng = as_generator(seed)
        self._matrix = self._draw_matrix(rng)
        self._pinv: Optional[np.ndarray] = None

    # ------------------------------------------------------------- plumbing
    def _draw_matrix(self, rng: np.random.Generator) -> np.ndarray:
        scale = 1.0 / math.sqrt(self._d_out)
        if self._ensemble == "gaussian":
            return rng.standard_normal((self._d, self._d_out)) * scale
        signs = rng.integers(0, 2, size=(self._d, self._d_out)) * 2 - 1
        return signs.astype(float) * scale

    # ------------------------------------------------------------------ API
    @property
    def input_dimension(self) -> int:
        return self._d

    @property
    def output_dimension(self) -> int:
        return self._d_out

    @property
    def matrix(self) -> np.ndarray:
        """The projection matrix Π of shape ``(d, d')`` (read-only copy)."""
        return self._matrix.copy()

    @property
    def ensemble(self) -> str:
        return self._ensemble

    @property
    def transmitted_scalars(self) -> int:
        """JL maps are data-oblivious: the server re-derives Π from the seed."""
        return 0

    def transform(self, points: np.ndarray) -> np.ndarray:
        points = check_matrix(points, "points", allow_empty=True)
        if points.shape[1] != self._d:
            raise ValueError(
                f"expected {self._d}-dimensional points, got {points.shape[1]}"
            )
        return points @ self._matrix

    def inverse_transform(self, points: np.ndarray) -> np.ndarray:
        points = check_matrix(points, "points", allow_empty=True)
        if points.shape[1] != self._d_out:
            raise ValueError(
                f"expected {self._d_out}-dimensional points, got {points.shape[1]}"
            )
        if self._pinv is None:
            self._pinv = moore_penrose_inverse(self._matrix)
        return points @ self._pinv

    def distortion(self, points: np.ndarray) -> float:
        """Empirical worst-case norm distortion ``max |‖π(x)‖/‖x‖ - 1|``.

        A diagnostic used in tests and the ablation bench; nonzero-norm rows
        only.
        """
        points = check_matrix(points, "points")
        norms = np.linalg.norm(points, axis=1)
        mask = norms > 0
        if not mask.any():
            return 0.0
        projected = np.linalg.norm(self.transform(points[mask]), axis=1)
        ratios = projected / norms[mask]
        return float(np.max(np.abs(ratios - 1.0)))
