"""Aggregation topologies: star and tree fan-in for the streaming fold.

The paper's protocol is a flat star — every source uplinks straight to the
edge server.  This package generalizes the star into configurable
aggregation trees: sources fold into mid-tree :class:`AggregatorNode`\\ s,
each hop re-compressing its subtree's summary with the composition's CR
stage (the :class:`~repro.streaming.tree.CoresetTree` merge is exactly the
per-hop operation) before shipping one bucket upward through the metered
network.  The :class:`Topology` spec pins the shape deterministically; the
:class:`TopologyRouter` wires it into the streaming engine's batch loop.
"""

from repro.topology.aggregator import AggregatorNode
from repro.topology.router import TopologyRouter
from repro.topology.spec import Topology, is_aggregator_id, resolve_topology

__all__ = [
    "AggregatorNode",
    "Topology",
    "TopologyRouter",
    "is_aggregator_id",
    "resolve_topology",
]
