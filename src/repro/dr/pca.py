"""PCA / SVD-based dimensionality reduction.

FSS (Theorem 3.2) and disPCA (Theorem 5.1) reduce the *intrinsic* dimension
of the dataset by projecting it onto the span of its top ``t`` right singular
vectors.  Crucially for the communication analysis, the projected points are
kept in the original ``d``-dimensional coordinates (the map is
``A -> A V V^T``), so what a data source actually transmits is the
``t``-dimensional coordinates of each point *plus* the basis ``V`` — which is
where the ``O(d k / ε²)`` communication term of FSS/BKLW comes from.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dr.base import DimensionalityReducer
from repro.utils.linalg import randomized_svd, safe_svd
from repro.utils.random import SeedLike
from repro.utils.validation import check_fraction, check_matrix, check_positive_int


def pca_target_dimension(k: int, epsilon: float) -> int:
    """Rank ``t = k + ceil(4k/ε²) - 1`` required by Theorem 5.1 (and used by
    FSS to bound the intrinsic dimension)."""
    k = check_positive_int(k, "k")
    epsilon = check_fraction(epsilon, "epsilon")
    return k + int(math.ceil(4.0 * k / epsilon**2)) - 1


class PCAProjection(DimensionalityReducer):
    """Projection onto the top-``rank`` right singular subspace of the data.

    Unlike :class:`~repro.dr.jl.JLProjection` this map is *data-dependent*:
    it must be fitted, and its basis costs ``d * rank`` scalars to transmit.

    Parameters
    ----------
    rank:
        Number of principal directions to keep.
    approximate:
        Use randomized SVD instead of exact SVD (the "approximate SVD"
        variant mentioned in Section 2; cheaper for very large matrices).
    seed:
        Seed for the randomized SVD sketch (ignored when ``approximate`` is
        False).
    """

    def __init__(self, rank: int, approximate: bool = False, seed: SeedLike = None) -> None:
        self._rank = check_positive_int(rank, "rank")
        self._approximate = bool(approximate)
        self._seed = seed
        self._basis: Optional[np.ndarray] = None  # (d, rank)
        self._singular_values: Optional[np.ndarray] = None
        self._d: Optional[int] = None

    # ------------------------------------------------------------------ API
    def fit(self, points: np.ndarray) -> "PCAProjection":
        """Compute the top singular subspace of ``points``."""
        points = check_matrix(points, "points")
        self._d = points.shape[1]
        rank = min(self._rank, min(points.shape))
        if self._approximate:
            _, s, vt = randomized_svd(points, rank, seed=self._seed)
        else:
            _, s, vt = safe_svd(points, full_matrices=False)
            s, vt = s[:rank], vt[:rank]
        self._basis = vt.T
        self._singular_values = s
        return self

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).transform(points)

    @property
    def is_fitted(self) -> bool:
        return self._basis is not None

    @property
    def basis(self) -> np.ndarray:
        """The ``(d, rank)`` orthonormal basis ``V`` (read-only copy)."""
        self._require_fitted()
        return self._basis.copy()

    @property
    def singular_values(self) -> np.ndarray:
        self._require_fitted()
        return self._singular_values.copy()

    @property
    def effective_rank(self) -> int:
        """Rank actually retained (may be below the requested rank)."""
        self._require_fitted()
        return int(self._basis.shape[1])

    @property
    def input_dimension(self) -> int:
        self._require_fitted()
        return int(self._d)

    @property
    def output_dimension(self) -> int:
        return self.effective_rank

    @property
    def transmitted_scalars(self) -> int:
        """Cost of shipping the basis V: ``d * rank`` scalars."""
        self._require_fitted()
        return int(self._d * self._basis.shape[1])

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Coordinates of the points in the principal subspace (``n × rank``)."""
        self._require_fitted()
        points = check_matrix(points, "points", allow_empty=True)
        if points.shape[1] != self._d:
            raise ValueError(
                f"expected {self._d}-dimensional points, got {points.shape[1]}"
            )
        return points @ self._basis

    def inverse_transform(self, points: np.ndarray) -> np.ndarray:
        """Embed subspace coordinates back into ``R^d`` (``x -> x V^T``)."""
        self._require_fitted()
        points = check_matrix(points, "points", allow_empty=True)
        if points.shape[1] != self._basis.shape[1]:
            raise ValueError(
                f"expected {self._basis.shape[1]}-dimensional points, "
                f"got {points.shape[1]}"
            )
        return points @ self._basis.T

    def project_in_place(self, points: np.ndarray) -> np.ndarray:
        """The FSS-style projection ``A -> A V V^T`` (original coordinates)."""
        return self.inverse_transform(self.transform(points))

    def residual_energy(self, points: np.ndarray) -> float:
        """Squared Frobenius distance between the data and its projection.

        This is the constant Δ that FSS adds to the coreset cost so that the
        projected dataset plus Δ approximates the original cost
        (Theorem 5.1 / Definition 3.2).
        """
        points = check_matrix(points, "points")
        residual = points - self.project_in_place(points)
        return float(np.sum(residual**2))

    # ------------------------------------------------------------ internals
    def _require_fitted(self) -> None:
        if self._basis is None:
            raise RuntimeError("PCAProjection must be fitted before use")
