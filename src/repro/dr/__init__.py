"""Dimensionality reduction (DR) methods for k-means.

Two families, mirroring Section 3.2 of the paper:

* :class:`JLProjection` — data-oblivious random (Johnson–Lindenstrauss)
  projections.  Because the projection matrix can be derived from a shared
  seed, transmitting it costs nothing, which is the key to the
  communication-cost savings of Algorithms 1, 3, and 4.
* :class:`PCAProjection` — SVD-based projection onto the top singular
  subspace, used inside FSS / disPCA.  Unlike JL, its basis is data-dependent
  and must be shipped to the server, costing ``O(d * d')`` scalars.
"""

from repro.dr.base import DimensionalityReducer
from repro.dr.jl import JLProjection, jl_target_dimension
from repro.dr.pca import PCAProjection, pca_target_dimension

__all__ = [
    "DimensionalityReducer",
    "JLProjection",
    "jl_target_dimension",
    "PCAProjection",
    "pca_target_dimension",
]
