"""Execute declarative specs through the existing experiment harness.

``run_experiment`` resolves an :class:`~repro.api.specs.ExperimentSpec`
into exactly the call the imperative API would make —
:meth:`repro.metrics.experiment.ExperimentRunner.run_registered` with the
spec's overrides — so results are bit-identical to hand-written harness
code (the golden-spec test pins this).  ``run_sweep`` expands a
:class:`~repro.api.specs.SweepSpec` into its cell grid and executes every
cell with *paired* Monte-Carlo seeds and one shared reference solution per
``(dataset, k)`` group, optionally fanning cells out over a thread pool
and appending each cell's :class:`~repro.api.store.RunRecord` to a
:class:`~repro.api.store.ResultStore`.

With ``cache=`` the sweep resolves single-source stage executions through
a content-addressed :class:`~repro.core.cache.StageCache`: cells sharing a
stage-chain prefix (paired seeds make them common — every quantization
level reuses one compression, every network condition reuses everything)
cost their distinct work, not their cell count.  Cells are *executed* in
prefix-grouped order to maximize sharing but always *returned* in grid
order; outputs are bit-identical with the cache on or off, warm or cold.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.journal import SweepJournal
from repro.api.specs import ExperimentSpec, SweepCell, SweepSpec
from repro.api.store import ResultStore, RunRecord, provenance, spec_hash
from repro.core.cache import (
    StageCache,
    StageCacheView,
    pack_reference,
    unpack_reference,
)
from repro.metrics.evaluation import EvaluationContext, PipelineEvaluation
from repro.metrics.experiment import (
    AlgorithmSummary,
    ExperimentResult,
    ExperimentRunner,
)
from repro.utils import faultpoints
from repro.utils.parallel import resolve_jobs
from repro.utils.random import as_generator, derive_seed


@dataclass
class ExperimentOutcome:
    """Everything one executed cell produced."""

    spec: ExperimentSpec
    label: str
    result: ExperimentResult
    summary: AlgorithmSummary
    run_seeds: Tuple[int, ...]
    dataset: Any = None  # the DatasetSpec describing the generated matrix
    cell_id: Optional[str] = None
    #: Stage-cache accounting for this cell (hits/misses/stored/corrupt);
    #: empty when the cell ran uncached.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def evaluations(self) -> List[PipelineEvaluation]:
        return list(self.result.evaluations[self.label])

    def to_record(self, stamp: Optional[Dict[str, Any]] = None) -> RunRecord:
        """Convert to a persistable :class:`RunRecord` (``stamp`` lets a
        sweep share one provenance dict across cells).

        Stage-cache accounting (:attr:`cache_stats`) deliberately stays out
        of the record: it depends on cache warmth, so persisting it would
        make a resumed sweep's store differ from an uncrashed one.  The
        sweep journal records it instead.
        """
        return RunRecord(
            algorithm=self.label,
            spec=self.spec.to_dict(),
            summary=self.summary.__dict__.copy(),
            evaluations=tuple(e.to_dict() for e in self.evaluations),
            run_seeds=self.run_seeds,
            cell_id=self.cell_id,
            provenance=provenance() if stamp is None else stamp,
        )


@dataclass
class RestoredOutcome:
    """A cell ``--resume`` skipped, rehydrated from its persisted record.

    Quacks like :class:`ExperimentOutcome` where reporting needs it
    (``label``/``cell_id``/``summary``/``evaluations``/``cache_stats``) but
    carries no live :class:`ExperimentResult` — the cell was not re-run.
    """

    record: RunRecord
    restored: bool = True

    @property
    def label(self) -> str:
        return self.record.algorithm

    @property
    def cell_id(self) -> Optional[str]:
        return self.record.cell_id

    @property
    def summary(self) -> AlgorithmSummary:
        return self.record.algorithm_summary()

    @property
    def run_seeds(self) -> Tuple[int, ...]:
        return self.record.run_seeds

    @property
    def evaluations(self) -> List[PipelineEvaluation]:
        return self.record.pipeline_evaluations()

    @property
    def cache_stats(self) -> Dict[str, int]:
        return {}

    def to_record(self, stamp: Optional[Dict[str, Any]] = None) -> RunRecord:
        return self.record


@dataclass
class FailedCell:
    """A sweep cell whose execution raised (captured, not fatal).

    Appears in the returned outcome list at the cell's grid position so
    comparison tables can surface the failure; carries the formatted
    traceback and the original exception.  Never persisted to the result
    store — re-running the sweep with ``resume=True`` retries it.
    """

    cell_id: Optional[str]
    label: str
    spec: ExperimentSpec
    spec_hash: str
    error: str
    exception: Optional[BaseException] = None
    #: Mirrors ExperimentOutcome's interface for reporting code.
    summary: None = None
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def evaluations(self) -> List[PipelineEvaluation]:
        return []


def _reference_seed(master_seed: int) -> int:
    """The reference-solver seed an ExperimentRunner would derive first
    from this master seed (kept in lockstep with its constructor)."""
    return derive_seed(as_generator(master_seed))


def run_experiment(
    spec: ExperimentSpec,
    *,
    points: Optional[np.ndarray] = None,
    dataset: Any = None,
    context: Optional[EvaluationContext] = None,
    reference_n_init: int = 10,
    cell_id: Optional[str] = None,
    stage_cache: Optional[Union[StageCache, StageCacheView]] = None,
) -> ExperimentOutcome:
    """Run one experiment spec end-to-end.

    ``points``/``dataset``/``context`` let the sweep runner share generated
    data and reference solutions across cells; results are identical with
    or without them because the runner's seed stream is independent of
    whether the reference solve is cached.  ``stage_cache`` memoizes stage
    outputs for single-source pipelines (the only kind that accepts it —
    other kinds simply run uncached); outcomes are bit-identical either
    way, and the outcome's ``cache_stats`` records this call's hits/misses.
    """
    if points is None:
        points, dataset = spec.data.load(spec.seed)
    runner = ExperimentRunner(
        points,
        k=spec.pipeline.k,
        monte_carlo_runs=spec.runs,
        seed=spec.seed,
        reference_n_init=reference_n_init,
        context=context,
    )
    label = spec.pipeline.algorithm
    cache_view: Optional[StageCacheView] = None
    extra: Dict[str, Any] = {}
    if stage_cache is not None and spec.pipeline.kind == "single-source":
        cache_view = (stage_cache.view() if isinstance(stage_cache, StageCache)
                      else stage_cache)
        extra["stage_cache"] = cache_view
    result = runner.run_registered(
        [label],
        num_sources=spec.num_sources,
        strategy=spec.strategy,
        **spec.overrides(),
        **extra,
    )
    return ExperimentOutcome(
        spec=spec,
        label=label,
        result=result,
        summary=result.summary()[label],
        run_seeds=tuple(runner.run_seeds),
        dataset=dataset,
        cell_id=cell_id,
        cache_stats={} if cache_view is None else cache_view.counters.as_dict(),
    )


def _prefix_signature(cell: SweepCell) -> str:
    """Grouping key for cache-friendly execution order.

    Cells with equal signatures share their entire pre-wire stage chain:
    everything except the network section (network randomness never touches
    the pipeline's master generator) and ``quantize_bits`` (quantization is
    applied on send, after the cached stages).  Executing a group
    adjacently keeps its entries warm in the cache's memory layer, and
    under ``jobs > 1`` racing group members dedupe on the per-key locks.
    """
    spec = cell.spec
    pipeline = spec.pipeline.to_dict()
    pipeline.pop("quantize_bits", None)
    return json.dumps(
        [list(spec.data.cache_key(spec.seed)), pipeline, spec.seed, spec.runs],
        sort_keys=True, default=str,
    )


def _resolve_cache(
    cache: Optional[Union[StageCache, str, Path]]
) -> Optional[StageCache]:
    if cache is None or isinstance(cache, StageCache):
        return cache
    return StageCache(cache)


def run_sweep(
    sweep: SweepSpec,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    reference_n_init: int = 10,
    cache: Optional[Union[StageCache, str, Path]] = None,
    resume: bool = False,
    max_failures: int = 0,
    journal: Optional[Union[SweepJournal, str, Path]] = None,
) -> List[Union[ExperimentOutcome, "RestoredOutcome", "FailedCell"]]:
    """Execute every cell of a sweep grid.

    Datasets and reference solutions are computed once per unique
    ``(dataset, k, seed)`` group and shared across the group's cells, so
    cells differing only in tuning knobs are judged against identical
    reference centers — the paper's paired-comparison methodology.  With
    ``jobs > 1`` cells run on one hoisted thread pool (cells are
    independent; the heavy work is GIL-releasing BLAS).

    ``cache`` — a :class:`~repro.core.cache.StageCache` or a directory path
    to build one from — memoizes stage outputs and reference solutions
    across cells *and* across sweep invocations: a warm re-run costs its
    distinct-prefix count, not its cell count, and is bit-identical to a
    cold one.  Cells are executed grouped by stage-chain prefix to maximize
    sharing, but the returned list (and the persisted records) always
    follow grid order.

    Crash tolerance: when ``store`` is given, each cell's record is
    durably appended as soon as the contiguous grid-order prefix up to it
    has completed — a killed sweep leaves the store a clean grid-order
    prefix of the full result.  A :class:`~repro.api.journal.SweepJournal`
    beside the store (``<store>.journal`` unless ``journal`` overrides it)
    logs every cell before and after execution.  With ``resume=True``,
    cells whose ``(spec_hash, cell_id)`` already sit in the store are
    skipped and returned as :class:`RestoredOutcome`; the completed store
    is byte-identical to an uncrashed run's (run both under a frozen clock
    — ``REPRO_FROZEN_CLOCK=1`` — if you need the timing fields identical
    too).

    Failure isolation: a cell that raises becomes a :class:`FailedCell`
    at its grid position (journaled with its traceback) instead of
    aborting the pool — up to ``max_failures`` of them, after which the
    original exception is re-raised.  Injected faults
    (:class:`~repro.utils.faultpoints.FaultInjected`) always propagate:
    they simulate crashes, and a crash cannot be "captured".
    """
    cells = sweep.cells()
    stage_cache = _resolve_cache(cache)

    if journal is None:
        sweep_journal = SweepJournal.for_store(store.path) if store is not None else None
    elif isinstance(journal, SweepJournal):
        sweep_journal = journal
    else:
        sweep_journal = SweepJournal(journal)

    # Resume: the store is the authoritative record of committed cells —
    # skip any cell whose (spec_hash, cell_id) it already holds.  The
    # journal is advisory (tracebacks, in-flight markers); previously
    # failed or in-flight cells have no store record, so they re-run.
    restored: Dict[int, RestoredOutcome] = {}
    if resume:
        if store is None:
            raise ValueError("resume=True requires a result store")
        committed = {
            (record.spec_hash, record.cell_id): record
            for record in store.load()
        }
        for cell in cells:
            key = (spec_hash(cell.spec.to_dict()), cell.cell_id)
            if key in committed:
                restored[cell.index] = RestoredOutcome(record=committed[key])

    # Generate each unique dataset once, and solve each unique reference
    # problem once, serially — the parallel phase then only reads them.
    # With a cache, reference solutions persist across invocations too
    # (they dominate warm-sweep time otherwise).
    points_cache: Dict[Tuple, Tuple[np.ndarray, Any]] = {}
    context_cache: Dict[Tuple, EvaluationContext] = {}
    for cell in cells:
        spec = cell.spec
        data_key = spec.data.cache_key(spec.seed)
        if data_key not in points_cache:
            points_cache[data_key] = spec.data.load(spec.seed)
        context_key = data_key + (spec.pipeline.k, spec.seed, reference_n_init)
        if context_key not in context_cache:
            points, _ = points_cache[data_key]
            context_cache[context_key] = _build_reference_context(
                points,
                spec.pipeline.k,
                reference_n_init,
                _reference_seed(spec.seed),
                stage_cache,
            )

    def execute(cell: SweepCell) -> ExperimentOutcome:
        spec = cell.spec
        data_key = spec.data.cache_key(spec.seed)
        points, dataset = points_cache[data_key]
        context = context_cache[data_key + (spec.pipeline.k, spec.seed, reference_n_init)]
        return run_experiment(
            spec,
            points=points,
            dataset=dataset,
            context=context,
            reference_n_init=reference_n_init,
            cell_id=cell.cell_id,
            stage_cache=None if stage_cache is None else stage_cache.view(),
        )

    def run_cell(cell: SweepCell) -> Union[ExperimentOutcome, FailedCell]:
        """Execute one cell with journaling and failure capture.

        Injected faults re-raise — they simulate a crash, and a crash
        cannot be captured as a failed cell.
        """
        cell_hash = spec_hash(cell.spec.to_dict())
        if sweep_journal is not None:
            sweep_journal.start(cell_hash, cell.cell_id, cell.spec.seed)
        try:
            outcome = execute(cell)
        except faultpoints.FaultInjected:
            raise
        except Exception as exc:
            error = traceback.format_exc()
            if sweep_journal is not None:
                sweep_journal.failed(cell_hash, cell.cell_id, cell.spec.seed, error)
            return FailedCell(
                cell_id=cell.cell_id,
                label=cell.spec.pipeline.algorithm,
                spec=cell.spec,
                spec_hash=cell_hash,
                error=error,
                exception=exc,
            )
        if sweep_journal is not None:
            sweep_journal.done(
                cell_hash, cell.cell_id, cell.spec.seed, cache=outcome.cache_stats
            )
        return outcome

    # Execute grouped by prefix signature (stable within a group); commit
    # and return in grid order.  Committing the contiguous grid-order
    # prefix as it completes (rather than everything at the end) is what
    # makes a killed sweep resumable: the store is always a clean prefix.
    ordered = [
        cell for cell in
        sorted(cells, key=lambda cell: (_prefix_signature(cell), cell.index))
        if cell.index not in restored
    ]
    completed: Dict[int, Union[ExperimentOutcome, RestoredOutcome, FailedCell]] = dict(restored)
    stamp = provenance() if store is not None else None
    failures: List[FailedCell] = []
    next_commit = 0

    def commit_ready_prefix() -> None:
        nonlocal next_commit
        while next_commit < len(cells) and next_commit in completed:
            finished = completed[next_commit]
            if (store is not None
                    and isinstance(finished, ExperimentOutcome)):
                store.append(finished.to_record(stamp))
            next_commit += 1

    def note(cell: SweepCell,
             outcome: Union[ExperimentOutcome, FailedCell]) -> None:
        completed[cell.index] = outcome
        if isinstance(outcome, FailedCell):
            failures.append(outcome)
            if len(failures) > max_failures:
                raise outcome.exception  # budget exhausted: abort the sweep
        commit_ready_prefix()

    workers = resolve_jobs(jobs)
    if workers > 1 and len(ordered) > 1:
        # One pool hoisted across the whole sweep; completions are
        # committed from this thread as they land, so store appends and
        # journal reads stay single-writer.
        with ThreadPoolExecutor(max_workers=min(workers, len(ordered))) as pool:
            pending = {pool.submit(run_cell, cell): cell for cell in ordered}
            try:
                while pending:
                    finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        note(pending.pop(future), future.result())
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
    else:
        for cell in ordered:
            note(cell, run_cell(cell))

    return [completed[index] for index in range(len(cells))]


def _build_reference_context(
    points: np.ndarray,
    k: int,
    n_init: int,
    seed: int,
    stage_cache: Optional[StageCache],
) -> EvaluationContext:
    """Build (or load) the shared reference solution for a cell group."""
    if stage_cache is None:
        return EvaluationContext.build(points, k, n_init=n_init, seed=seed)
    key = stage_cache.reference_key(points, k, n_init, seed)
    payload = stage_cache.lookup(key)
    if payload is not None:
        stage_cache.count_hit()
        centers, cost = unpack_reference(payload)
        return EvaluationContext(
            points=points, reference_centers=centers, reference_cost=cost
        )
    context = EvaluationContext.build(points, k, n_init=n_init, seed=seed)
    stored = False
    try:
        stage_cache.store(
            key, pack_reference(context.reference_centers, context.reference_cost)
        )
        stored = True
    except OSError:
        pass
    stage_cache.count_miss(stored=stored)
    return context


__all__ = [
    "ExperimentOutcome",
    "RestoredOutcome",
    "FailedCell",
    "run_experiment",
    "run_sweep",
]
